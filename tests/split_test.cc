#include "corpus/split.h"

#include <gtest/gtest.h>

#include "corpus/synthetic.h"

namespace warplda {
namespace {

Corpus MakeCorpus() {
  SyntheticConfig config;
  config.num_docs = 200;
  config.vocab_size = 100;
  config.mean_doc_length = 15;
  config.seed = 55;
  return GenerateLdaCorpus(config).corpus;
}

TEST(SplitByDocumentTest, PartitionsAllDocuments) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitByDocument(corpus, 0.25, 3);
  EXPECT_EQ(split.train.num_docs() + split.heldout.num_docs(),
            corpus.num_docs());
  EXPECT_EQ(split.train.num_tokens() + split.heldout.num_tokens(),
            corpus.num_tokens());
  EXPECT_EQ(split.train_doc_ids.size(), split.train.num_docs());
  EXPECT_EQ(split.heldout_doc_ids.size(), split.heldout.num_docs());
}

TEST(SplitByDocumentTest, PreservesWordSpace) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitByDocument(corpus, 0.3, 4);
  EXPECT_EQ(split.train.num_words(), corpus.num_words());
  EXPECT_EQ(split.heldout.num_words(), corpus.num_words());
}

TEST(SplitByDocumentTest, FractionRoughlyRespected) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitByDocument(corpus, 0.3, 5);
  double fraction =
      static_cast<double>(split.heldout.num_docs()) / corpus.num_docs();
  EXPECT_NEAR(fraction, 0.3, 0.1);
}

TEST(SplitByDocumentTest, DocumentsCopiedVerbatim) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitByDocument(corpus, 0.5, 6);
  for (DocId i = 0; i < split.train.num_docs(); ++i) {
    DocId original = split.train_doc_ids[i];
    auto a = split.train.doc_tokens(i);
    auto b = corpus.doc_tokens(original);
    ASSERT_EQ(a.size(), b.size());
    for (size_t n = 0; n < a.size(); ++n) EXPECT_EQ(a[n], b[n]);
  }
}

TEST(SplitByDocumentTest, DeterministicForSeed) {
  Corpus corpus = MakeCorpus();
  CorpusSplit a = SplitByDocument(corpus, 0.4, 7);
  CorpusSplit b = SplitByDocument(corpus, 0.4, 7);
  EXPECT_EQ(a.train_doc_ids, b.train_doc_ids);
  CorpusSplit c = SplitByDocument(corpus, 0.4, 8);
  EXPECT_NE(a.train_doc_ids, c.train_doc_ids);
}

TEST(SplitWithinDocumentsTest, AlignedDocumentCounts) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitWithinDocuments(corpus, 0.2, 9);
  EXPECT_EQ(split.train.num_docs(), corpus.num_docs());
  EXPECT_EQ(split.heldout.num_docs(), corpus.num_docs());
  EXPECT_EQ(split.train.num_tokens() + split.heldout.num_tokens(),
            corpus.num_tokens());
}

TEST(SplitWithinDocumentsTest, EveryMultiTokenDocSplit) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitWithinDocuments(corpus, 0.2, 10);
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    if (corpus.doc_length(d) >= 2) {
      EXPECT_GE(split.heldout.doc_length(d), 1u) << "doc " << d;
      EXPECT_GE(split.train.doc_length(d), 1u) << "doc " << d;
    }
  }
}

TEST(SplitWithinDocumentsTest, TokenMultisetPreservedPerDoc) {
  Corpus corpus = MakeCorpus();
  CorpusSplit split = SplitWithinDocuments(corpus, 0.4, 11);
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    std::vector<int> original(corpus.num_words(), 0);
    for (WordId w : corpus.doc_tokens(d)) ++original[w];
    std::vector<int> recombined(corpus.num_words(), 0);
    for (WordId w : split.train.doc_tokens(d)) ++recombined[w];
    for (WordId w : split.heldout.doc_tokens(d)) ++recombined[w];
    EXPECT_EQ(original, recombined) << "doc " << d;
  }
}

TEST(FilterVocabularyTest, MinDfDropsRareWords) {
  CorpusBuilder builder;
  builder.set_num_words(4);
  // word 0 in 3 docs, word 1 in 2, word 2 in 1, word 3 unused.
  builder.AddDocument(std::vector<WordId>{0, 1});
  builder.AddDocument(std::vector<WordId>{0, 1, 2});
  builder.AddDocument(std::vector<WordId>{0});
  Corpus corpus = builder.Build();

  VocabFilter filter;
  filter.min_document_frequency = 2;
  FilteredCorpus filtered = FilterVocabulary(corpus, filter);
  EXPECT_EQ(filtered.corpus.num_words(), 2u);
  EXPECT_EQ(filtered.new_to_old.size(), 2u);
  EXPECT_EQ(filtered.new_to_old[0], 0u);
  EXPECT_EQ(filtered.new_to_old[1], 1u);
  EXPECT_EQ(filtered.old_to_new[2], FilteredCorpus::kDroppedWord);
  EXPECT_EQ(filtered.corpus.num_tokens(), 5u);
}

TEST(FilterVocabularyTest, MaxFractionDropsStopWords) {
  CorpusBuilder builder;
  builder.set_num_words(3);
  for (int d = 0; d < 10; ++d) {
    std::vector<WordId> doc = {0};  // word 0 in every doc
    if (d < 3) doc.push_back(1);
    if (d == 0) doc.push_back(2);
    builder.AddDocument(doc);
  }
  Corpus corpus = builder.Build();
  VocabFilter filter;
  filter.max_document_fraction = 0.5;
  FilteredCorpus filtered = FilterVocabulary(corpus, filter);
  EXPECT_EQ(filtered.old_to_new[0], FilteredCorpus::kDroppedWord);
  EXPECT_NE(filtered.old_to_new[1], FilteredCorpus::kDroppedWord);
  EXPECT_NE(filtered.old_to_new[2], FilteredCorpus::kDroppedWord);
}

TEST(FilterVocabularyTest, DocumentAlignmentPreserved) {
  CorpusBuilder builder;
  builder.set_num_words(2);
  builder.AddDocument(std::vector<WordId>{1});  // becomes empty
  builder.AddDocument(std::vector<WordId>{0, 0});
  builder.AddDocument(std::vector<WordId>{0});
  Corpus corpus = builder.Build();
  VocabFilter filter;
  filter.min_document_frequency = 2;  // word 1 appears in 1 doc -> dropped
  FilteredCorpus filtered = FilterVocabulary(corpus, filter);
  EXPECT_EQ(filtered.corpus.num_docs(), 3u);
  EXPECT_EQ(filtered.corpus.doc_length(0), 0u);
  EXPECT_EQ(filtered.corpus.doc_length(1), 2u);
  EXPECT_EQ(filtered.corpus.doc_length(2), 1u);
}

TEST(FilterVocabularyTest, NoOpFilterKeepsEverything) {
  Corpus corpus = MakeCorpus();
  FilteredCorpus filtered = FilterVocabulary(corpus, VocabFilter{});
  EXPECT_EQ(filtered.corpus.num_tokens(), corpus.num_tokens());
  EXPECT_EQ(filtered.corpus.num_words(), corpus.num_words());
}

}  // namespace
}  // namespace warplda

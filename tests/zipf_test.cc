#include "util/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (uint32_t r = 0; r < 100; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfSampler zipf(50, 1.2);
  for (uint32_t r = 1; r < 50; ++r) {
    EXPECT_LT(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (uint32_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, ClassicZipfRatio) {
  ZipfSampler zipf(1000, 1.0);
  // P(0)/P(1) = 2 for s=1.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 2.0, 1e-9);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 1.1);
  Rng rng(42);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (uint32_t r : {0u, 1u, 5u, 19u}) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.Pmf(r), 0.01);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler zipf(7, 2.0);
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfSampler zipf(1000, 2.0);
  Rng rng(44);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) head += zipf.Sample(rng) < 10;
  EXPECT_GT(head / static_cast<double>(n), 0.9);
}

}  // namespace
}  // namespace warplda

#include "util/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(77);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next());
  a.Seed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), first[i]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIntStaysInBounds) {
  Rng rng(11);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextInt(bound), bound);
  }
}

TEST(RngTest, NextIntBoundOneAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInt(1), 0u);
}

TEST(RngTest, NextIntCoversAllOutcomes) {
  Rng rng(17);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntApproximatelyUniform) {
  Rng rng(19);
  const uint32_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextInt(bound)];
  for (uint32_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / bound, 5 * std::sqrt(n / bound));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

}  // namespace
}  // namespace warplda

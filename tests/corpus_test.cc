#include "corpus/corpus.h"

#include <vector>

#include <gtest/gtest.h>

namespace warplda {
namespace {

Corpus SmallCorpus() {
  // doc0: [2, 0, 2]   doc1: [1]   doc2: [0, 1, 2, 2]
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{2, 0, 2});
  builder.AddDocument(std::vector<WordId>{1});
  builder.AddDocument(std::vector<WordId>{0, 1, 2, 2});
  return builder.Build();
}

TEST(CorpusTest, BasicDimensions) {
  Corpus c = SmallCorpus();
  EXPECT_EQ(c.num_docs(), 3u);
  EXPECT_EQ(c.num_words(), 3u);
  EXPECT_EQ(c.num_tokens(), 8u);
  EXPECT_DOUBLE_EQ(c.mean_doc_length(), 8.0 / 3.0);
}

TEST(CorpusTest, DocLengthsAndTokens) {
  Corpus c = SmallCorpus();
  EXPECT_EQ(c.doc_length(0), 3u);
  EXPECT_EQ(c.doc_length(1), 1u);
  EXPECT_EQ(c.doc_length(2), 4u);
  auto d0 = c.doc_tokens(0);
  ASSERT_EQ(d0.size(), 3u);
  EXPECT_EQ(d0[0], 2u);
  EXPECT_EQ(d0[1], 0u);
  EXPECT_EQ(d0[2], 2u);
}

TEST(CorpusTest, WordFrequencies) {
  Corpus c = SmallCorpus();
  EXPECT_EQ(c.word_frequency(0), 2u);
  EXPECT_EQ(c.word_frequency(1), 2u);
  EXPECT_EQ(c.word_frequency(2), 4u);
}

TEST(CorpusTest, WordTokensSortedByPosition) {
  Corpus c = SmallCorpus();
  auto w2 = c.word_tokens(2);
  ASSERT_EQ(w2.size(), 4u);
  // Occurrences of word 2 at doc-major positions 0, 2, 6, 7.
  EXPECT_EQ(w2[0], 0u);
  EXPECT_EQ(w2[1], 2u);
  EXPECT_EQ(w2[2], 6u);
  EXPECT_EQ(w2[3], 7u);
  // Sorted by position implies sorted by document id (paper §5.2).
  for (size_t i = 1; i < w2.size(); ++i) EXPECT_LT(w2[i - 1], w2[i]);
}

TEST(CorpusTest, TokenWordConsistent) {
  Corpus c = SmallCorpus();
  for (WordId w = 0; w < c.num_words(); ++w) {
    for (TokenIdx t : c.word_tokens(w)) EXPECT_EQ(c.token_word(t), w);
  }
}

TEST(CorpusTest, TokenDocBinarySearch) {
  Corpus c = SmallCorpus();
  EXPECT_EQ(c.token_doc(0), 0u);
  EXPECT_EQ(c.token_doc(2), 0u);
  EXPECT_EQ(c.token_doc(3), 1u);
  EXPECT_EQ(c.token_doc(4), 2u);
  EXPECT_EQ(c.token_doc(7), 2u);
}

TEST(CorpusTest, WordMajorRankIsInversePermutation) {
  Corpus c = SmallCorpus();
  std::vector<bool> seen(c.num_tokens(), false);
  for (TokenIdx t = 0; t < c.num_tokens(); ++t) {
    TokenIdx rank = c.word_major_rank(t);
    ASSERT_LT(rank, c.num_tokens());
    EXPECT_FALSE(seen[rank]);
    seen[rank] = true;
  }
  // rank of token t must fall inside its word's block.
  for (TokenIdx t = 0; t < c.num_tokens(); ++t) {
    WordId w = c.token_word(t);
    TokenIdx rank = c.word_major_rank(t);
    EXPECT_GE(rank, c.word_major_offset(w));
    EXPECT_LT(rank, c.word_major_offset(w) + c.word_frequency(w));
  }
}

TEST(CorpusTest, EmptyDocumentsAllowed) {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{});
  builder.AddDocument(std::vector<WordId>{0});
  builder.AddDocument(std::vector<WordId>{});
  Corpus c = builder.Build();
  EXPECT_EQ(c.num_docs(), 3u);
  EXPECT_EQ(c.doc_length(0), 0u);
  EXPECT_EQ(c.doc_length(1), 1u);
  EXPECT_EQ(c.doc_length(2), 0u);
  EXPECT_EQ(c.num_tokens(), 1u);
}

TEST(CorpusTest, ExplicitVocabLargerThanObserved) {
  CorpusBuilder builder;
  builder.set_num_words(10);
  builder.AddDocument(std::vector<WordId>{1, 2});
  Corpus c = builder.Build();
  EXPECT_EQ(c.num_words(), 10u);
  EXPECT_EQ(c.word_frequency(9), 0u);
  EXPECT_TRUE(c.word_tokens(9).empty());
}

TEST(CorpusTest, BuilderReusableAfterBuild) {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0, 1});
  Corpus first = builder.Build();
  builder.AddDocument(std::vector<WordId>{0});
  Corpus second = builder.Build();
  EXPECT_EQ(first.num_tokens(), 2u);
  EXPECT_EQ(second.num_tokens(), 1u);
  EXPECT_EQ(second.num_docs(), 1u);
}

TEST(CorpusTest, EmptyCorpus) {
  CorpusBuilder builder;
  Corpus c = builder.Build();
  EXPECT_EQ(c.num_docs(), 0u);
  EXPECT_EQ(c.num_tokens(), 0u);
  EXPECT_DOUBLE_EQ(c.mean_doc_length(), 0.0);
}

}  // namespace
}  // namespace warplda

#include "eval/topic_model.h"

#include <fstream>

#include <gtest/gtest.h>

namespace warplda {
namespace {

Corpus MakeCorpus() {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0, 0, 1});
  builder.AddDocument(std::vector<WordId>{1, 2});
  return builder.Build();
}

TEST(TopicModelTest, AggregatesCounts) {
  Corpus c = MakeCorpus();
  // tokens doc-major: w0->t0, w0->t0, w1->t1, w1->t1, w2->t0
  std::vector<TopicId> z = {0, 0, 1, 1, 0};
  TopicModel model(c, z, 2, 0.5, 0.01);
  EXPECT_EQ(model.num_topics(), 2u);
  EXPECT_EQ(model.num_words(), 3u);
  ASSERT_EQ(model.word_topics(0).size(), 1u);
  EXPECT_EQ(model.word_topics(0)[0].first, 0u);
  EXPECT_EQ(model.word_topics(0)[0].second, 2);
  ASSERT_EQ(model.word_topics(1).size(), 1u);
  EXPECT_EQ(model.word_topics(1)[0].second, 2);
  EXPECT_EQ(model.topic_counts()[0], 3);
  EXPECT_EQ(model.topic_counts()[1], 2);
}

TEST(TopicModelTest, PhiIsNormalizedOverWords) {
  Corpus c = MakeCorpus();
  std::vector<TopicId> z = {0, 1, 0, 1, 0};
  TopicModel model(c, z, 2, 0.5, 0.01);
  for (TopicId k = 0; k < 2; ++k) {
    double total = 0.0;
    for (WordId w = 0; w < model.num_words(); ++w) total += model.Phi(w, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TopicModelTest, TopWordsSortedByCount) {
  Corpus c = MakeCorpus();
  std::vector<TopicId> z = {0, 0, 0, 1, 0};
  TopicModel model(c, z, 2, 0.5, 0.01);
  auto top = model.TopWords(0, 5);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].first, 0u);  // word 0 has 2 tokens in topic 0
  EXPECT_EQ(top[0].second, 2);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST(TopicModelTest, TopWordsRespectsLimit) {
  Corpus c = MakeCorpus();
  std::vector<TopicId> z = {0, 0, 0, 0, 0};
  TopicModel model(c, z, 1, 0.5, 0.01);
  EXPECT_EQ(model.TopWords(0, 2).size(), 2u);
}

TEST(TopicModelTest, DescribeTopicUsesVocabulary) {
  Corpus c = MakeCorpus();
  std::vector<TopicId> z = {0, 0, 0, 0, 0};
  TopicModel model(c, z, 1, 0.5, 0.01);
  Vocabulary vocab;
  vocab.GetOrAdd("apple");
  vocab.GetOrAdd("banana");
  vocab.GetOrAdd("cherry");
  std::string desc = model.DescribeTopic(0, vocab, 2);
  EXPECT_NE(desc.find("apple"), std::string::npos);
}

TEST(TopicModelTest, SaveLoadRoundTrip) {
  Corpus c = MakeCorpus();
  std::vector<TopicId> z = {0, 1, 0, 1, 1};
  TopicModel model(c, z, 2, 0.25, 0.02);
  std::string path = testing::TempDir() + "/model.bin";
  std::string error;
  ASSERT_TRUE(model.Save(path, &error)) << error;
  TopicModel loaded;
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  EXPECT_TRUE(model == loaded);
  EXPECT_DOUBLE_EQ(loaded.alpha(), 0.25);
  EXPECT_DOUBLE_EQ(loaded.beta(), 0.02);
}

TEST(TopicModelTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  TopicModel model;
  std::string error;
  EXPECT_FALSE(model.Load(path, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TopicModelTest, LoadRejectsMissingFile) {
  TopicModel model;
  std::string error;
  EXPECT_FALSE(model.Load(testing::TempDir() + "/absent.bin", &error));
}

}  // namespace
}  // namespace warplda

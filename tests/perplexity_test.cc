#include "eval/perplexity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"

namespace warplda {
namespace {

// A two-topic corpus with disjoint vocabularies: words 0-4 vs 5-9.
Corpus DisjointCorpus(int docs_per_topic, int doc_len) {
  CorpusBuilder builder;
  builder.set_num_words(10);
  for (int d = 0; d < 2 * docs_per_topic; ++d) {
    std::vector<WordId> doc;
    WordId offset = d % 2 == 0 ? 0 : 5;
    for (int n = 0; n < doc_len; ++n) doc.push_back(offset + n % 5);
    builder.AddDocument(doc);
  }
  return builder.Build();
}

std::vector<TopicId> OracleAssignments(const Corpus& c) {
  std::vector<TopicId> z(c.num_tokens());
  for (TokenIdx t = 0; t < c.num_tokens(); ++t) {
    z[t] = c.token_word(t) < 5 ? 0 : 1;
  }
  return z;
}

TEST(PerplexityTest, FiniteAndPositive) {
  Corpus train = DisjointCorpus(10, 20);
  TopicModel model(train, OracleAssignments(train), 2, 0.5, 0.01);
  Corpus heldout = DisjointCorpus(2, 20);
  double ppl = HeldOutPerplexity(model, heldout);
  EXPECT_TRUE(std::isfinite(ppl));
  EXPECT_GT(ppl, 1.0);
}

TEST(PerplexityTest, OracleModelBeatsScrambledModel) {
  Corpus train = DisjointCorpus(20, 30);
  TopicModel oracle(train, OracleAssignments(train), 2, 0.5, 0.01);
  // Scrambled: every token assigned by parity of its position -> topics mix
  // both vocabularies.
  std::vector<TopicId> scrambled(train.num_tokens());
  for (TokenIdx t = 0; t < train.num_tokens(); ++t) scrambled[t] = t % 2;
  TopicModel bad(train, scrambled, 2, 0.5, 0.01);

  Corpus heldout = DisjointCorpus(3, 30);
  double ppl_oracle = HeldOutPerplexity(oracle, heldout);
  double ppl_bad = HeldOutPerplexity(bad, heldout);
  EXPECT_LT(ppl_oracle, ppl_bad);
}

TEST(PerplexityTest, PerplexityBoundedByVocabulary) {
  // A model can never be worse than uniform over the effective vocabulary
  // (up to smoothing slack); sanity bound for the disjoint corpus.
  Corpus train = DisjointCorpus(10, 20);
  TopicModel model(train, OracleAssignments(train), 2, 0.5, 0.01);
  Corpus heldout = DisjointCorpus(2, 20);
  double ppl = HeldOutPerplexity(model, heldout);
  // Oracle topics put ~uniform mass on 5 words each.
  EXPECT_LT(ppl, 11.0);
  EXPECT_GT(ppl, 4.0);
}

TEST(PerplexityTest, EmptyHeldoutIsZero) {
  Corpus train = DisjointCorpus(5, 10);
  TopicModel model(train, OracleAssignments(train), 2, 0.5, 0.01);
  CorpusBuilder builder;
  builder.set_num_words(10);
  Corpus empty = builder.Build();
  EXPECT_DOUBLE_EQ(HeldOutPerplexity(model, empty), 0.0);
}

TEST(PerplexityTest, DeterministicForSeed) {
  Corpus train = DisjointCorpus(10, 20);
  TopicModel model(train, OracleAssignments(train), 2, 0.5, 0.01);
  Corpus heldout = DisjointCorpus(2, 20);
  PerplexityOptions options;
  options.seed = 5;
  double a = HeldOutPerplexity(model, heldout, options);
  double b = HeldOutPerplexity(model, heldout, options);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace warplda

// End-to-end pipeline tests: corpus -> training -> model -> serialization ->
// inference -> held-out evaluation, crossing every library boundary.
#include <gtest/gtest.h>

#include "cachesim/access_stats.h"
#include "cachesim/cache_sim.h"
#include "core/inference.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "baselines/light_lda.h"
#include "corpus/synthetic.h"
#include "corpus/tokenizer.h"
#include "corpus/uci.h"
#include "eval/log_likelihood.h"
#include "eval/perplexity.h"

namespace warplda {
namespace {

TEST(IntegrationTest, TrainSaveLoadInferPipeline) {
  SyntheticConfig config;
  config.num_docs = 200;
  config.vocab_size = 400;
  config.num_topics = 6;
  config.mean_doc_length = 40;
  config.alpha = 0.05;
  config.seed = 13;
  SyntheticCorpus sc = GenerateLdaCorpus(config);

  WarpLdaSampler sampler;
  LdaConfig lda = LdaConfig::PaperDefaults(12);
  TrainOptions options;
  options.iterations = 40;
  options.eval_every = 10;
  TrainResult result = Train(sampler, sc.corpus, lda, options);
  EXPECT_GT(result.history.back().log_likelihood,
            result.history.front().log_likelihood);

  TopicModel model = result.ToModel(sc.corpus, lda);
  std::string path = testing::TempDir() + "/integration_model.bin";
  std::string error;
  ASSERT_TRUE(model.Save(path, &error)) << error;
  TopicModel loaded;
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  ASSERT_TRUE(model == loaded);

  Inferencer inferencer(loaded);
  auto theta = inferencer.InferTheta(sc.corpus.doc_tokens(0));
  double total = 0.0;
  for (double t : theta) total += t;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(IntegrationTest, WarpLdaRecoversPlantedStructure) {
  // Strongly separated synthetic topics must be recovered: the trained
  // model's perplexity should approach the oracle and beat a random model.
  SyntheticConfig config;
  config.num_docs = 300;
  config.vocab_size = 200;
  config.num_topics = 4;
  config.mean_doc_length = 60;
  config.alpha = 0.03;
  config.word_zipf_skew = 1.3;  // concentrated topics -> separable structure
  config.seed = 17;
  config.num_docs = 360;
  SyntheticCorpus generated = GenerateLdaCorpus(config);
  // Split one generated corpus so train and held-out share the same topics
  // (a re-seeded generator would plant different vocabulary permutations).
  CorpusBuilder train_builder;
  CorpusBuilder heldout_builder;
  train_builder.set_num_words(config.vocab_size);
  heldout_builder.set_num_words(config.vocab_size);
  for (DocId d = 0; d < generated.corpus.num_docs(); ++d) {
    auto words = generated.corpus.doc_tokens(d);
    std::vector<WordId> doc(words.begin(), words.end());
    if (d < 300) {
      train_builder.AddDocument(doc);
    } else {
      heldout_builder.AddDocument(doc);
    }
  }
  struct {
    Corpus corpus;
    std::vector<TopicId> true_topics;
  } train{train_builder.Build(), {}}, heldout{heldout_builder.Build(), {}};
  train.true_topics.assign(generated.true_topics.begin(),
                           generated.true_topics.begin() +
                               train.corpus.num_tokens());

  // PaperDefaults' α=50/K rule targets K in the thousands; at K=4 it would
  // force near-uniform θ and wash out the planted structure.
  LdaConfig lda = LdaConfig::PaperDefaults(4);
  lda.alpha = 0.1;
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 60;
  options.eval_every = 0;
  TrainResult result = Train(sampler, train.corpus, lda, options);
  TopicModel trained = result.ToModel(train.corpus, lda);

  // Random-assignment model as the straw man.
  Rng rng(3);
  std::vector<TopicId> random_z(train.corpus.num_tokens());
  for (auto& z : random_z) z = rng.NextInt(lda.num_topics);
  TopicModel random_model(train.corpus, random_z, lda.num_topics, lda.alpha,
                          lda.beta);
  // Oracle model from the generator's true topics.
  TopicModel oracle(train.corpus, train.true_topics, config.num_topics,
                    lda.alpha, lda.beta);

  double ppl_trained = HeldOutPerplexity(trained, heldout.corpus);
  double ppl_random = HeldOutPerplexity(random_model, heldout.corpus);
  double ppl_oracle = HeldOutPerplexity(oracle, heldout.corpus);
  EXPECT_LT(ppl_trained, 0.8 * ppl_random);
  EXPECT_LT(ppl_trained, 1.5 * ppl_oracle);
}

TEST(IntegrationTest, TextPipelineToTopics) {
  std::vector<std::string> texts;
  for (int i = 0; i < 30; ++i) {
    texts.push_back("stock market trading price shares profit economy");
    texts.push_back("football match goal player team score league");
  }
  TokenizedCorpus tc = BuildCorpusFromTexts(texts);

  LdaConfig lda = LdaConfig::PaperDefaults(2);
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 50;
  options.eval_every = 0;
  TrainResult result = Train(sampler, tc.corpus, lda, options);
  TopicModel model = result.ToModel(tc.corpus, lda);

  // The two planted themes should separate: "market" and "football" end up
  // dominated by different topics.
  WordId market = tc.vocabulary.Find("market");
  WordId football = tc.vocabulary.Find("football");
  ASSERT_NE(market, Vocabulary::kNotFound);
  ASSERT_NE(football, Vocabulary::kNotFound);
  auto dominant = [&](WordId w) {
    TopicId best = 0;
    int32_t best_count = -1;
    for (const auto& [k, c] : model.word_topics(w)) {
      if (c > best_count) {
        best_count = c;
        best = k;
      }
    }
    return best;
  };
  EXPECT_NE(dominant(market), dominant(football));
}

TEST(IntegrationTest, UciRoundTripTrainsIdentically) {
  SyntheticConfig config;
  config.num_docs = 80;
  config.vocab_size = 150;
  config.seed = 23;
  Corpus original = GenerateLdaCorpus(config).corpus;
  std::string path = testing::TempDir() + "/integration_docword.txt";
  std::string error;
  ASSERT_TRUE(uci::WriteDocword(original, path, &error)) << error;
  Corpus reloaded;
  ASSERT_TRUE(uci::ReadDocword(path, &reloaded, &error)) << error;

  // Same shape; training runs and converges on the reloaded corpus.
  ASSERT_EQ(reloaded.num_tokens(), original.num_tokens());
  WarpLdaSampler sampler;
  LdaConfig lda = LdaConfig::PaperDefaults(8);
  sampler.Init(reloaded, lda);
  double initial = JointLogLikelihood(reloaded, sampler.Assignments(),
                                      lda.num_topics, lda.alpha, lda.beta);
  for (int i = 0; i < 10; ++i) sampler.Iterate();
  EXPECT_GT(JointLogLikelihood(reloaded, sampler.Assignments(),
                               lda.num_topics, lda.alpha, lda.beta),
            initial);
}

TEST(IntegrationTest, TracedWarpLdaFootprintSmallerThanLightLda) {
  // The core memory-efficiency claim (Table 2 / §3.3) on real executions:
  // WarpLDA's randomly accessed bytes per scope are bounded by O(K) while
  // LightLDA's grow with the number of distinct words (O(KV) structure).
  SyntheticConfig config;
  config.num_docs = 150;
  config.vocab_size = 2000;
  config.mean_doc_length = 80;
  config.seed = 29;
  Corpus corpus = GenerateLdaCorpus(config).corpus;
  LdaConfig lda = LdaConfig::PaperDefaults(64);
  lda.mh_steps = 1;

  AccessStats warp_stats;
  WarpLdaSampler warp;
  warp.Init(corpus, lda);
  warp.set_tracer(&warp_stats);
  warp.Iterate();

  AccessStats light_stats;
  LightLdaSampler light;
  light.Init(corpus, lda);
  light.set_tracer(&light_stats);
  light.Iterate();

  EXPECT_LT(warp_stats.mean_random_bytes_per_scope() * 4,
            light_stats.mean_random_bytes_per_scope());
}

TEST(IntegrationTest, CacheSimRanksWarpBelowLightLda) {
  // Table 4's qualitative claim with a small simulated cache.
  SyntheticConfig config;
  config.num_docs = 120;
  config.vocab_size = 3000;
  config.mean_doc_length = 60;
  config.seed = 37;
  Corpus corpus = GenerateLdaCorpus(config).corpus;
  LdaConfig lda = LdaConfig::PaperDefaults(128);
  lda.mh_steps = 1;

  CacheConfig cache;
  cache.size_bytes = 64 * 1024;  // small cache so the gap shows quickly
  cache.associativity = 8;

  CacheSim warp_cache(cache);
  WarpLdaSampler warp;
  warp.Init(corpus, lda);
  warp.set_tracer(&warp_cache);
  warp.Iterate();

  CacheSim light_cache(cache);
  LightLdaSampler light;
  light.Init(corpus, lda);
  light.set_tracer(&light_cache);
  light.Iterate();

  EXPECT_LT(warp_cache.miss_rate(), light_cache.miss_rate());
}

}  // namespace
}  // namespace warplda

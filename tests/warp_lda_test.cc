#include "core/warp_lda.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"

namespace warplda {
namespace {

Corpus TestCorpus() {
  SyntheticConfig config;
  config.num_docs = 150;
  config.vocab_size = 300;
  config.num_topics = 8;
  config.mean_doc_length = 30;
  config.alpha = 0.08;
  config.seed = 31;
  return GenerateLdaCorpus(config).corpus;
}

TEST(WarpLdaTest, AssignmentsCoverAllTokensWithinRange) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  LdaConfig config = LdaConfig::PaperDefaults(16);
  sampler.Init(corpus, config);
  auto z = sampler.Assignments();
  ASSERT_EQ(z.size(), corpus.num_tokens());
  for (TopicId topic : z) EXPECT_LT(topic, config.num_topics);
}

TEST(WarpLdaTest, IterateKeepsAssignmentsInRange) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  LdaConfig config = LdaConfig::PaperDefaults(16);
  sampler.Init(corpus, config);
  for (int i = 0; i < 5; ++i) sampler.Iterate();
  for (TopicId topic : sampler.Assignments()) {
    EXPECT_LT(topic, config.num_topics);
  }
}

TEST(WarpLdaTest, LikelihoodImprovesOverTraining) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  LdaConfig config = LdaConfig::PaperDefaults(16);
  sampler.Init(corpus, config);
  double initial = JointLogLikelihood(corpus, sampler.Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  for (int i = 0; i < 30; ++i) sampler.Iterate();
  double trained = JointLogLikelihood(corpus, sampler.Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  EXPECT_GT(trained, initial + 0.01 * std::abs(initial));
}

TEST(WarpLdaTest, DeterministicForSeedSingleThread) {
  Corpus corpus = TestCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.seed = 555;
  WarpLdaSampler a;
  WarpLdaSampler b;
  a.Init(corpus, config);
  b.Init(corpus, config);
  for (int i = 0; i < 3; ++i) {
    a.Iterate();
    b.Iterate();
  }
  EXPECT_EQ(a.Assignments(), b.Assignments());
}

TEST(WarpLdaTest, DifferentSeedsProduceDifferentChains) {
  Corpus corpus = TestCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.seed = 1;
  WarpLdaSampler a;
  a.Init(corpus, config);
  config.seed = 2;
  WarpLdaSampler b;
  b.Init(corpus, config);
  a.Iterate();
  b.Iterate();
  EXPECT_NE(a.Assignments(), b.Assignments());
}

TEST(WarpLdaTest, MultithreadedRunIsValidAndConverges) {
  Corpus corpus = TestCorpus();
  WarpLdaOptions options;
  options.num_threads = 4;
  WarpLdaSampler sampler(options);
  LdaConfig config = LdaConfig::PaperDefaults(16);
  sampler.Init(corpus, config);
  double initial = JointLogLikelihood(corpus, sampler.Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  for (int i = 0; i < 20; ++i) sampler.Iterate();
  auto z = sampler.Assignments();
  ASSERT_EQ(z.size(), corpus.num_tokens());
  for (TopicId topic : z) EXPECT_LT(topic, config.num_topics);
  double trained = JointLogLikelihood(corpus, z, config.num_topics,
                                      config.alpha, config.beta);
  EXPECT_GT(trained, initial);
}

TEST(WarpLdaTest, WordPhaseAlonePreservesTokenCount) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  sampler.Init(corpus, LdaConfig::PaperDefaults(8));
  sampler.WordPhase();
  EXPECT_EQ(sampler.Assignments().size(), corpus.num_tokens());
  sampler.DocPhase();
  EXPECT_EQ(sampler.Assignments().size(), corpus.num_tokens());
}

TEST(WarpLdaTest, UsesMultipleTopicsAfterTraining) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  LdaConfig config = LdaConfig::PaperDefaults(16);
  sampler.Init(corpus, config);
  for (int i = 0; i < 10; ++i) sampler.Iterate();
  std::set<TopicId> used;
  for (TopicId topic : sampler.Assignments()) used.insert(topic);
  EXPECT_GT(used.size(), 3u);
}

TEST(WarpLdaTest, MhStepsSweepAllConverge) {
  Corpus corpus = TestCorpus();
  for (uint32_t m : {1u, 2u, 4u}) {
    WarpLdaSampler sampler;
    LdaConfig config = LdaConfig::PaperDefaults(16);
    config.mh_steps = m;
    sampler.Init(corpus, config);
    double initial = JointLogLikelihood(corpus, sampler.Assignments(),
                                        config.num_topics, config.alpha,
                                        config.beta);
    for (int i = 0; i < 20; ++i) sampler.Iterate();
    double trained = JointLogLikelihood(corpus, sampler.Assignments(),
                                        config.num_topics, config.alpha,
                                        config.beta);
    EXPECT_GT(trained, initial) << "M=" << m;
  }
}

TEST(WarpLdaTest, HandlesEmptyDocuments) {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0, 1, 2});
  builder.AddDocument(std::vector<WordId>{});
  builder.AddDocument(std::vector<WordId>{2, 2});
  Corpus corpus = builder.Build();
  WarpLdaSampler sampler;
  sampler.Init(corpus, LdaConfig::PaperDefaults(4));
  for (int i = 0; i < 3; ++i) sampler.Iterate();
  EXPECT_EQ(sampler.Assignments().size(), 5u);
}

TEST(WarpLdaTest, SingleTopicDegenerates) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  LdaConfig config = LdaConfig::PaperDefaults(1);
  sampler.Init(corpus, config);
  sampler.Iterate();
  for (TopicId topic : sampler.Assignments()) EXPECT_EQ(topic, 0u);
}

}  // namespace
}  // namespace warplda

#include "core/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "dist/cluster_sim.h"
#include "dist/partitioner.h"
#include "obs/trace.h"

namespace warplda {
namespace {

Corpus TestCorpus() {
  SyntheticConfig config;
  config.num_docs = 140;
  config.vocab_size = 260;
  config.num_topics = 6;
  config.mean_doc_length = 22;
  config.alpha = 0.1;
  config.seed = 91;
  return GenerateLdaCorpus(config).corpus;
}

LdaConfig TestConfig() {
  LdaConfig config = LdaConfig::PaperDefaults(10);
  config.seed = 4242;
  config.mh_steps = 2;
  return config;
}

std::vector<int64_t> Histogram(const std::vector<TopicId>& assignments,
                               uint32_t num_topics) {
  std::vector<int64_t> counts(num_topics, 0);
  for (TopicId t : assignments) ++counts[t];
  return counts;
}

TEST(ParallelExecutorTest, RunsEveryTaskExactlyOnceWithValidWorkerIds) {
  ParallelExecutor executor(4);
  EXPECT_EQ(executor.num_threads(), 4u);
  constexpr uint32_t kTasks = 223;  // more tasks than threads, odd count
  std::vector<std::atomic<uint32_t>> ran(kTasks);
  std::atomic<bool> worker_in_range{true};
  executor.Run(kTasks, [&](uint32_t worker, uint32_t task) {
    if (worker >= 4) worker_in_range = false;
    ran[task].fetch_add(1);
  });
  EXPECT_TRUE(worker_in_range);
  for (uint32_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(ran[t].load(), 1u) << "task " << t;
  }
  // The pool is reusable after a run.
  std::atomic<uint32_t> total{0};
  executor.Run(10, [&](uint32_t, uint32_t task) { total += task; });
  EXPECT_EQ(total.load(), 45u);
}

TEST(ParallelExecutorTest, SingleThreadRunsInlineAndInOrder) {
  ParallelExecutor executor(1);
  std::vector<uint32_t> order;
  executor.Run(8, [&](uint32_t worker, uint32_t task) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);  // no synchronization: must be the calling thread
  });
  std::vector<uint32_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelExecutorTest, FirstTaskExceptionPropagatesAndPoolSurvives) {
  ParallelExecutor executor(3);
  EXPECT_THROW(
      executor.Run(50,
                   [&](uint32_t, uint32_t task) {
                     if (task == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  std::atomic<uint32_t> count{0};
  executor.Run(50, [&](uint32_t, uint32_t) { ++count; });
  EXPECT_EQ(count.load(), 50u);
}

// Inline (1-thread) execution honors the same contract: the remaining tasks
// still run and the first exception is rethrown afterwards.
TEST(ParallelExecutorTest, SingleThreadExceptionRunsRemainingTasks) {
  ParallelExecutor executor(1);
  std::vector<char> ran(10, 0);
  EXPECT_THROW(
      executor.Run(10,
                   [&](uint32_t, uint32_t task) {
                     ran[task] = 1;
                     if (task == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  EXPECT_EQ(std::count(ran.begin(), ran.end(), 1), 10);
}

// A sweep that throws mid-stage must not wedge the sampler: the driver
// aborts the sweep and the sampler stays fully usable.
TEST(ParallelSweepTest, AbortedSweepLeavesSamplerUsable) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);
  SweepPlan plan = MakeSweepPlan(corpus, 2, 2);

  // Worker 5 is out of range for the default 1-worker scratch, so the first
  // RunBlock of ParallelExecutor-free manual driving throws mid-stage.
  sampler.BeginSweep(plan);
  sampler.RunBlock(0, 0);
  EXPECT_THROW(sampler.RunBlock(0, 1, 5), std::invalid_argument);
  sampler.AbortSweep();
  EXPECT_EQ(sampler.sweep_stage(), SweepStage::kDone);
  EXPECT_NO_THROW(sampler.Iterate());
  EXPECT_EQ(sampler.topic_counts(),
            Histogram(sampler.Assignments(), config.num_topics));

  // AbortSweep with no open sweep is a no-op.
  EXPECT_NO_THROW(sampler.AbortSweep());

  // After recovery, grid sweeps still track the serial trajectory exactly.
  WarpLdaSampler reference;
  reference.Init(corpus, config);
  reference.Iterate();
  reference.Iterate();
  WarpLdaSampler fresh;
  fresh.Init(corpus, config);
  ParallelExecutor executor(2);
  executor.RunSweep(fresh, plan);
  executor.RunSweep(fresh, plan);
  EXPECT_EQ(reference.Assignments(), fresh.Assignments());
}

// The acceptance oracle of this PR: a multi-threaded grid sweep must
// reproduce the serial fused Iterate() bit for bit — same assignments AND
// same folded global topic counts.
TEST(ParallelSweepTest, OneAndEightThreadsMatchIterateOn4x4Plan) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  SweepPlan plan = MakeSweepPlan(corpus, 4, 4, PartitionStrategy::kGreedy);

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler grid_one;
  grid_one.Init(corpus, config);
  WarpLdaSampler grid_eight;
  grid_eight.Init(corpus, config);
  ParallelExecutor one(1);
  ParallelExecutor eight(8);

  for (int sweep = 0; sweep < 3; ++sweep) {
    serial.Iterate();
    one.RunSweep(grid_one, plan);
    eight.RunSweep(grid_eight, plan);
    ASSERT_EQ(serial.Assignments(), grid_one.Assignments())
        << "1-thread grid diverged at sweep " << sweep;
    ASSERT_EQ(serial.Assignments(), grid_eight.Assignments())
        << "8-thread grid diverged at sweep " << sweep;
    // The per-worker ck-delta partitions must fold to the serial counts,
    // which in turn must equal the assignment histogram.
    ASSERT_EQ(serial.topic_counts(), grid_eight.topic_counts());
    ASSERT_EQ(grid_eight.topic_counts(),
              Histogram(grid_eight.Assignments(), config.num_topics));
  }
}

// Stress: many more blocks than threads, uneven rectangular grid, repeated
// sweeps reusing the same executor and plan indices.
TEST(ParallelSweepTest, MoreBlocksThanThreadsStress) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  SweepPlan plan = MakeSweepPlan(corpus, 7, 5, PartitionStrategy::kDynamic);

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler grid;
  grid.Init(corpus, config);
  ParallelExecutor executor(3);
  for (int sweep = 0; sweep < 3; ++sweep) {
    serial.Iterate();
    executor.RunSweep(grid, plan);
  }
  EXPECT_EQ(serial.Assignments(), grid.Assignments());
  EXPECT_EQ(serial.topic_counts(), grid.topic_counts());
}

TEST(ParallelSweepTest, ClusterSimRunSweepWithExecutorMatchesSerial) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  ClusterConfig cluster;
  cluster.num_workers = 4;
  ClusterSim sim(corpus, cluster);

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler distributed;
  distributed.Init(corpus, config);
  ParallelExecutor executor(4);
  for (int sweep = 0; sweep < 2; ++sweep) {
    serial.Iterate();
    IterationTiming timing = sim.RunSweep(distributed, &executor);
    EXPECT_GT(timing.wall_seconds, 0.0);
  }
  EXPECT_EQ(serial.Assignments(), distributed.Assignments());
}

TEST(ParallelSweepTest, TrainerGridExecutionMatchesFusedTraining) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();

  WarpLdaSampler fused;
  TrainOptions fused_options;
  fused_options.iterations = 4;
  fused_options.eval_every = 2;
  TrainResult fused_result = Train(fused, corpus, config, fused_options);

  WarpLdaSampler grid;
  TrainOptions grid_options = fused_options;
  grid_options.grid_execution = true;
  grid_options.sweep_plan = MakeSweepPlan(corpus, 3, 3);
  grid_options.sweep_threads = 4;
  TrainResult grid_result = Train(grid, corpus, config, grid_options);

  EXPECT_EQ(fused_result.assignments, grid_result.assignments);
  ASSERT_EQ(fused_result.history.size(), grid_result.history.size());
  for (size_t i = 0; i < fused_result.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(fused_result.history[i].log_likelihood,
                     grid_result.history[i].log_likelihood);
  }
}

TEST(ParallelSweepTest, TrainerGridExecutionRequiresGridSampler) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  auto sampler = CreateSampler("cgs");  // no GridSampler implementation
  ASSERT_NE(sampler, nullptr);
  TrainOptions options;
  options.iterations = 1;
  options.grid_execution = true;
  EXPECT_THROW(Train(*sampler, corpus, config, options),
               std::invalid_argument);
}

TEST(ParallelSweepTest, WorkerReservationIsEnforced) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;
  EXPECT_THROW(sampler.ReserveWorkers(2), std::logic_error);  // before Init

  WarpLdaOptions two_threads;
  two_threads.num_threads = 2;
  WarpLdaSampler initialized(two_threads);
  initialized.Init(corpus, TestConfig());
  SweepPlan plan = MakeSweepPlan(corpus, 2, 2);
  initialized.BeginSweep(plan);
  // At a stage barrier (BeginSweep opens one) the pool may grow — the
  // mid-sweep restore path relies on this; with blocks in flight it may not.
  initialized.ReserveWorkers(3);
  initialized.RunBlock(0, 0, 1);
  EXPECT_THROW(initialized.ReserveWorkers(8), std::logic_error);  // in flight
  // Scratch exists for 3 workers: worker 2 is usable, worker 3 is not.
  EXPECT_THROW(initialized.RunBlock(0, 1, 3), std::invalid_argument);
  initialized.RunBlock(0, 1, 2);
  initialized.RunBlock(1, 0, 1);
  initialized.RunBlock(1, 1, 0);
  initialized.EndStage();
  // Finish the sweep (how many barriers remain depends on stage fusion).
  while (initialized.sweep_stage() != SweepStage::kDone) {
    for (uint32_t i = 0; i < 2; ++i) {
      for (uint32_t j = 0; j < 2; ++j) initialized.RunBlock(i, j);
    }
    initialized.EndStage();
  }
  initialized.EndSweep();

  initialized.ReserveWorkers(8);  // between sweeps: fine
  ParallelExecutor executor(8);
  executor.RunSweep(initialized, plan);  // 8 workers on a 2x2 grid
  EXPECT_EQ(initialized.topic_counts(),
            Histogram(initialized.Assignments(), TestConfig().num_topics));
}

// Counts `"name": "<name>", "cat": "<cat>", "ph": "<ph>"` occurrences in a
// trace JSON string (the exact field order TraceRecorder::ToJson emits).
size_t CountTraceEvents(const std::string& json, const std::string& name,
                        const std::string& cat, char ph) {
  const std::string needle = "\"name\": \"" + name + "\", \"cat\": \"" + cat +
                             "\", \"ph\": \"" + ph + "\"";
  size_t count = 0;
  for (size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// A traced grid sweep emits one balanced span per stage plus per-worker
// block spans, with every thread's B/E events forming a proper nesting.
TEST(ParallelSweepTest, RunSweepEmitsBalancedStageAndBlockSpans) {
  Corpus corpus = TestCorpus();
  // Fusion off pins the historical four-span trace shape; the fused span
  // shape is covered by FusedSweepTraceNamesSpanEntryStages below.
  WarpLdaOptions unfused;
  unfused.fusion = StageFusion::kNone;
  WarpLdaSampler sampler(unfused);
  sampler.Init(corpus, TestConfig());
  SweepPlan plan = MakeSweepPlan(corpus, 3, 3);
  ParallelExecutor executor(2);

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Start();
  executor.RunSweep(sampler, plan);
  rec.Stop();
  const std::vector<obs::TraceEvent> events = rec.Snapshot();
  rec.Clear();

  std::map<uint32_t, int> depth;
  std::map<std::string, int> begins;
  for (const obs::TraceEvent& event : events) {
    if (event.phase == 'B') {
      ++depth[event.tid];
      ++begins[event.name];
    } else if (event.phase == 'E') {
      --depth[event.tid];
      ASSERT_GE(depth[event.tid], 0) << "unbalanced spans on tid "
                                     << event.tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "open span left on tid " << tid;
  }
  // All four stages appear exactly once per sweep...
  EXPECT_EQ(begins["word-accept"], 1);
  EXPECT_EQ(begins["word-propose"], 1);
  EXPECT_EQ(begins["doc-accept"], 1);
  EXPECT_EQ(begins["doc-propose"], 1);
  EXPECT_EQ(begins["end-stage"], 4);
  // ... and every stage ran all 9 blocks under a block span.
  EXPECT_EQ(begins["block"], 4 * 9);
}

// Under the default fusion policy a grid plan runs [word-accept],
// [word-propose + doc-accept], [doc-propose]: three spans named by their
// entry stage, three barriers, and one block pass per span.
TEST(ParallelSweepTest, FusedSweepTraceNamesSpanEntryStages) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;  // default options: StageFusion::kAuto
  sampler.Init(corpus, TestConfig());
  SweepPlan plan = MakeSweepPlan(corpus, 3, 3);
  ParallelExecutor executor(2);

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Start();
  executor.RunSweep(sampler, plan);
  rec.Stop();
  const std::vector<obs::TraceEvent> events = rec.Snapshot();
  rec.Clear();

  std::map<std::string, int> begins;
  for (const obs::TraceEvent& event : events) {
    if (event.phase == 'B') ++begins[event.name];
  }
  EXPECT_EQ(begins["word-accept"], 1);
  EXPECT_EQ(begins["word-propose"], 1);  // doc-accept runs inside this span
  EXPECT_EQ(begins["doc-accept"], 0);
  EXPECT_EQ(begins["doc-propose"], 1);
  EXPECT_EQ(begins["end-stage"], 3);
  EXPECT_EQ(begins["block"], 3 * 9);
}

// The PR's trace acceptance criterion: a grid-execution Train() with
// trace_path set writes a Chrome trace whose JSON contains all four stage
// spans per sweep plus per-worker block spans.
TEST(ParallelSweepTest, TrainWithTracePathWritesChromeTraceJson) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  WarpLdaOptions unfused;
  unfused.fusion = StageFusion::kNone;  // pin the four-stage trace shape
  WarpLdaSampler sampler(unfused);
  TrainOptions options;
  options.iterations = 3;
  options.eval_every = 0;
  options.grid_execution = true;
  options.sweep_plan = MakeSweepPlan(corpus, 2, 2);
  options.sweep_threads = 2;
  options.trace_path = testing::TempDir() + "/train_trace.json";
  Train(sampler, corpus, config, options);

  std::FILE* f = std::fopen(options.trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "trace file not written: " << options.trace_path;
  std::string json;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    json.append(buffer, n);
  }
  std::fclose(f);
  std::remove(options.trace_path.c_str());

  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  // One sweep span and one of each stage span per iteration.
  EXPECT_EQ(CountTraceEvents(json, "sweep", "trainer", 'B'),
            options.iterations);
  for (const char* stage :
       {"word-accept", "word-propose", "doc-accept", "doc-propose"}) {
    EXPECT_EQ(CountTraceEvents(json, stage, "stage", 'B'), options.iterations)
        << stage;
    EXPECT_EQ(CountTraceEvents(json, stage, "stage", 'E'), options.iterations)
        << stage;
  }
  // 4 blocks per stage, 4 stages, 3 sweeps.
  EXPECT_EQ(CountTraceEvents(json, "block", "executor", 'B'),
            options.iterations * 4u * 4u);
}

}  // namespace
}  // namespace warplda

// Statistical goodness-of-fit property tests for the sampling primitives:
// chi-square tests of alias tables and F+ trees against their target
// distributions across a parameter sweep, and a fuzz comparison of the F+
// tree against a linear-scan reference under random updates. These guard the
// distributional correctness every sampler in the library leans on.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/alias_table.h"
#include "util/ftree.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace warplda {
namespace {

// Chi-square statistic of observed counts vs expected probabilities.
double ChiSquare(const std::vector<int64_t>& observed,
                 const std::vector<double>& probabilities, int64_t samples) {
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    double expected = probabilities[i] * samples;
    if (expected < 1e-9) continue;
    double diff = observed[i] - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

// Loose upper quantile for chi-square with df degrees of freedom: the 99.9%
// quantile is below df + 4*sqrt(2*df) + 20 for the df used here (Wilson-
// Hilferty bound with slack). Failures indicate real bias, not bad luck.
double ChiSquareBound(size_t df) {
  return static_cast<double>(df) + 4.0 * std::sqrt(2.0 * df) + 20.0;
}

struct DistCase {
  uint32_t n;
  double skew;  // weights ∝ (i+1)^-skew
  uint64_t seed;
};

class AliasGofTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(AliasGofTest, SampleDistributionMatchesWeights) {
  const auto& param = GetParam();
  std::vector<double> weights(param.n);
  double total = 0.0;
  for (uint32_t i = 0; i < param.n; ++i) {
    weights[i] = std::pow(i + 1.0, -param.skew);
    total += weights[i];
  }
  AliasTable table;
  table.Build(weights);

  Rng rng(param.seed);
  const int64_t samples = 200000;
  std::vector<int64_t> observed(param.n, 0);
  for (int64_t s = 0; s < samples; ++s) ++observed[table.Sample(rng)];

  std::vector<double> probabilities(param.n);
  for (uint32_t i = 0; i < param.n; ++i) probabilities[i] = weights[i] / total;
  EXPECT_LT(ChiSquare(observed, probabilities, samples),
            ChiSquareBound(param.n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AliasGofTest,
    ::testing::Values(DistCase{2, 0.0, 1}, DistCase{3, 1.0, 2},
                      DistCase{16, 0.5, 3}, DistCase{64, 1.0, 4},
                      DistCase{256, 1.5, 5}, DistCase{1000, 2.0, 6}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "s" +
             std::to_string(static_cast<int>(pinfo.param.skew * 10));
    });

class FTreeGofTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(FTreeGofTest, SampleDistributionMatchesWeights) {
  const auto& param = GetParam();
  std::vector<double> weights(param.n);
  double total = 0.0;
  for (uint32_t i = 0; i < param.n; ++i) {
    weights[i] = std::pow(i + 1.0, -param.skew);
    total += weights[i];
  }
  FTree tree;
  tree.Build(weights);

  Rng rng(param.seed + 100);
  const int64_t samples = 200000;
  std::vector<int64_t> observed(param.n, 0);
  for (int64_t s = 0; s < samples; ++s) ++observed[tree.Sample(rng)];

  std::vector<double> probabilities(param.n);
  for (uint32_t i = 0; i < param.n; ++i) probabilities[i] = weights[i] / total;
  EXPECT_LT(ChiSquare(observed, probabilities, samples),
            ChiSquareBound(param.n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FTreeGofTest,
    ::testing::Values(DistCase{2, 0.0, 1}, DistCase{5, 1.0, 2},
                      DistCase{33, 0.5, 3}, DistCase{128, 1.2, 4},
                      DistCase{777, 1.8, 5}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "s" +
             std::to_string(static_cast<int>(pinfo.param.skew * 10));
    });

TEST(FTreeFuzzTest, MatchesLinearScanReferenceUnderRandomUpdates) {
  Rng rng(999);
  const uint32_t n = 97;
  std::vector<double> reference(n, 0.0);
  FTree tree(n);
  for (int round = 0; round < 5000; ++round) {
    uint32_t i = rng.NextInt(n);
    double w = rng.NextBernoulli(0.2) ? 0.0 : rng.NextDouble() * 10.0;
    reference[i] = w;
    tree.Update(i, w);

    double total = 0.0;
    for (double v : reference) total += v;
    ASSERT_NEAR(tree.Total(), total, 1e-9 * (1.0 + total));

    if (total > 0.0) {
      double u = rng.NextDouble();
      uint32_t sampled = tree.SampleWith(u);
      // Reference inverse-CDF.
      double target = u * total;
      uint32_t expected = n - 1;
      double acc = 0.0;
      for (uint32_t j = 0; j < n; ++j) {
        acc += reference[j];
        if (target < acc) {
          expected = j;
          break;
        }
      }
      // Floating-point association differences may pick an adjacent nonzero
      // index at bin boundaries; accept exact match or boundary slip.
      if (sampled != expected) {
        double cdf_before = 0.0;
        for (uint32_t j = 0; j < sampled; ++j) cdf_before += reference[j];
        EXPECT_NEAR(cdf_before, target, 1e-6 * (1.0 + total))
            << "sampled " << sampled << " expected " << expected;
      }
    }
  }
}

TEST(ZipfGofTest, MatchesAnalyticPmf) {
  const uint32_t n = 50;
  ZipfSampler zipf(n, 1.0);
  Rng rng(31);
  const int64_t samples = 300000;
  std::vector<int64_t> observed(n, 0);
  for (int64_t s = 0; s < samples; ++s) ++observed[zipf.Sample(rng)];
  std::vector<double> probabilities(n);
  for (uint32_t i = 0; i < n; ++i) probabilities[i] = zipf.Pmf(i);
  EXPECT_LT(ChiSquare(observed, probabilities, samples), ChiSquareBound(n - 1));
}

}  // namespace
}  // namespace warplda

#include "core/checkpoint.h"

#include <pthread.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/parallel_executor.h"
#include "core/streaming.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "dist/partitioner.h"
#include "eval/log_likelihood.h"
#include "serve/model_store.h"
#include "util/checkpoint_io.h"

namespace warplda {
namespace {

Corpus MakeCorpus() {
  SyntheticConfig config;
  config.num_docs = 80;
  config.vocab_size = 150;
  config.mean_doc_length = 20;
  config.seed = 71;
  return GenerateLdaCorpus(config).corpus;
}

/// Small corpus for the byte-level fuzz loops (every prefix / every byte),
/// keeping the checkpoint files a few hundred bytes.
Corpus MakeTinyCorpus() {
  SyntheticConfig config;
  config.num_docs = 12;
  config.vocab_size = 30;
  config.mean_doc_length = 6;
  config.seed = 9;
  return GenerateLdaCorpus(config).corpus;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(8);
  checkpoint.config.mh_steps = 3;
  checkpoint.iteration = 17;
  checkpoint.assignments = {0, 1, 2, 7, 3, 3};
  std::string path = TempPath("ckpt.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;

  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.config.num_topics, 8u);
  EXPECT_EQ(loaded.config.mh_steps, 3u);
  EXPECT_DOUBLE_EQ(loaded.config.alpha, checkpoint.config.alpha);
  EXPECT_EQ(loaded.iteration, 17u);
  EXPECT_EQ(loaded.assignments, checkpoint.assignments);
}

TEST(CheckpointTest, AsymmetricPriorRoundTrips) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.config.alpha_vector = {0.4, 0.3, 0.2, 0.1};
  checkpoint.assignments = {0, 3, 1};
  std::string path = TempPath("ckpt_asym.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.config.alpha_vector, checkpoint.config.alpha_vector);
}

TEST(CheckpointTest, LoadRejectsGarbage) {
  std::string path = TempPath("ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "nonsense";
  }
  TrainingCheckpoint checkpoint;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &checkpoint, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointTest, LoadRejectsLegacyV1FilesWithClearMessage) {
  // The retired WARPCKP1 format had no version, size, or CRC fields.
  std::string path = TempPath("ckpt_v1.bin");
  std::vector<uint8_t> bytes(64, 0);
  const uint64_t v1_magic = 0x57415250'434B5031ULL;
  std::memcpy(bytes.data(), &v1_magic, sizeof(v1_magic));
  WriteAll(path, bytes);
  TrainingCheckpoint checkpoint;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &checkpoint, &error));
  EXPECT_NE(error.find("WARPCKP1"), std::string::npos) << error;
}

TEST(CheckpointTest, LoadRejectsOutOfRangeAssignments) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.assignments = {0, 9};  // 9 >= K
  std::string path = TempPath("ckpt_range.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  TrainingCheckpoint loaded;
  EXPECT_FALSE(LoadCheckpoint(path, &loaded, &error));
}

// Save() serializes whatever it is given; Load() is the validation gate.
// Poisonous hyper-parameters must be rejected at load time with a message,
// never allowed to reach a sampler.
TEST(CheckpointTest, LoadRejectsPoisonedConfigs) {
  const std::string path = TempPath("ckpt_poison.bin");
  auto save_and_expect_rejected = [&](TrainingCheckpoint bad) {
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(bad, path, &error)) << error;
    TrainingCheckpoint loaded;
    EXPECT_FALSE(LoadCheckpoint(path, &loaded, &error));
    EXPECT_FALSE(error.empty());
  };
  TrainingCheckpoint base;
  base.config = LdaConfig::PaperDefaults(4);
  base.assignments = {0, 1};

  TrainingCheckpoint bad = base;
  bad.config.alpha = std::numeric_limits<double>::quiet_NaN();
  save_and_expect_rejected(bad);
  bad = base;
  bad.config.alpha = -0.5;
  save_and_expect_rejected(bad);
  bad = base;
  bad.config.beta = std::numeric_limits<double>::infinity();
  save_and_expect_rejected(bad);
  bad = base;
  bad.config.beta = 0.0;
  save_and_expect_rejected(bad);
  bad = base;
  bad.config.mh_steps = 0;
  save_and_expect_rejected(bad);
  bad = base;
  bad.config.alpha_vector = {0.1, 0.2};  // wrong length for K=4
  save_and_expect_rejected(bad);
}

TEST(CheckpointTest, AtomicSaveLeavesOldCheckpointOnFailedWrite) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.assignments = {1, 2, 3};
  std::string path = TempPath("ckpt_atomic.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  const std::vector<uint8_t> original = ReadAll(path);

  // A save into an unwritable location fails without touching `path`.
  EXPECT_FALSE(SaveCheckpoint(checkpoint,
                              "/nonexistent-dir-zz/ckpt.bin", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ReadAll(path), original);
  // And no stray temp file is left beside the target.
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Corruption fuzzing: a checkpoint truncated at ANY byte boundary or with
// ANY single-byte corruption must be rejected with an error — never a crash,
// a hang, or a multi-gigabyte allocation.

TEST(CheckpointFuzzTest, TruncationAtEveryByteIsRejected) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(6);
  checkpoint.config.alpha_vector = {0.1, 0.2, 0.3, 0.1, 0.2, 0.3};
  checkpoint.iteration = 3;
  checkpoint.assignments = {0, 1, 2, 3, 4, 5, 0, 1};
  const std::string path = TempPath("ckpt_trunc.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  const std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 36u);

  const std::string cut = TempPath("ckpt_trunc_cut.bin");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut, std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    TrainingCheckpoint loaded;
    error.clear();
    EXPECT_FALSE(LoadCheckpoint(cut, &loaded, &error))
        << "accepted a checkpoint truncated to " << len << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CheckpointFuzzTest, EverySingleByteCorruptionIsRejected) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(5);
  checkpoint.iteration = 2;
  checkpoint.assignments = {0, 1, 2, 3, 4};
  const std::string path = TempPath("ckpt_flip.bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  const std::vector<uint8_t> bytes = ReadAll(path);

  const std::string flipped = TempPath("ckpt_flip_mut.bin");
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> mutated = bytes;
      mutated[pos] ^= bit;
      WriteAll(flipped, mutated);
      TrainingCheckpoint loaded;
      EXPECT_FALSE(LoadCheckpoint(flipped, &loaded, &error))
          << "accepted corruption at byte " << pos << " bit " << int(bit);
    }
  }
}

TEST(CheckpointFuzzTest, OversizedCountIsRejectedWithoutAllocation) {
  // Hand-craft a frame whose assignment count claims 2^50 entries. The
  // header and CRC are valid — only the bounded reader can catch it, and it
  // must do so BEFORE sizing the vector (the original bug resize()d first).
  PayloadWriter out;
  out.Put(uint32_t{4});                       // num_topics
  out.Put(uint32_t{2});                       // mh_steps
  out.Put(uint64_t{7});                       // seed
  out.Put(double{0.5});                       // alpha
  out.Put(double{0.01});                      // beta
  out.Put(uint64_t{0});                       // alpha_vector count
  out.Put(uint32_t{1});                       // iteration
  out.Put(uint64_t{1} << 50);                 // assignment count: absurd
  out.Put(uint32_t{0});                       // ...backed by 4 bytes
  const std::string path = TempPath("ckpt_oversized.bin");
  std::string error;
  ASSERT_TRUE(WriteFrame(path, FrameKind::kTrainingCheckpoint, out.bytes(),
                         &error))
      << error;
  TrainingCheckpoint loaded;
  EXPECT_FALSE(LoadCheckpoint(path, &loaded, &error));
  EXPECT_TRUE(loaded.assignments.empty());  // nothing was ever allocated
}

TEST(CheckpointFuzzTest, WrongFrameKindIsRejected) {
  // A sweep checkpoint handed to the training loader (and vice versa) must
  // fail on the kind field, not mis-parse.
  SweepCheckpoint sweep;
  sweep.config = LdaConfig::PaperDefaults(4);
  sweep.assignments = {0, 1};
  sweep.proposals = {0, 0, 1, 1};
  sweep.ck_fixed = {1, 1, 0, 0};
  const std::string path = TempPath("ckpt_kind.bin");
  std::string error;
  ASSERT_TRUE(SaveSweepCheckpoint(sweep, path, &error)) << error;
  TrainingCheckpoint loaded;
  EXPECT_FALSE(LoadCheckpoint(path, &loaded, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(CheckpointFuzzTest, SweepCheckpointValidatesInvariants) {
  SweepCheckpoint good;
  good.config = LdaConfig::PaperDefaults(4);
  good.config.mh_steps = 2;
  good.assignments = {0, 1, 2, 3};
  good.proposals = std::vector<TopicId>(8, 1);
  good.ck_fixed = {1, 1, 1, 1};
  const std::string path = TempPath("sweep_invariants.bin");
  std::string error;
  ASSERT_TRUE(SaveSweepCheckpoint(good, path, &error)) << error;
  SweepCheckpoint loaded;
  ASSERT_TRUE(LoadSweepCheckpoint(path, &loaded, &error)) << error;

  auto expect_rejected = [&](const SweepCheckpoint& bad) {
    ASSERT_TRUE(SaveSweepCheckpoint(bad, path, &error)) << error;
    SweepCheckpoint out;
    EXPECT_FALSE(LoadSweepCheckpoint(path, &out, &error));
    EXPECT_FALSE(error.empty());
  };
  SweepCheckpoint bad = good;
  bad.ck_fixed = {2, 1, 1, 1};  // sums to 5 over 4 tokens
  expect_rejected(bad);
  bad = good;
  bad.ck_fixed = {-1, 3, 1, 1};  // negative count
  expect_rejected(bad);
  bad = good;
  bad.proposals.pop_back();  // no longer mh_steps × tokens
  expect_rejected(bad);
  bad = good;
  bad.proposals[3] = 9;  // out-of-range topic
  expect_rejected(bad);
  bad = good;
  bad.plan.num_doc_blocks = 3;  // block map missing for a 3-block plan
  expect_rejected(bad);
}

TEST(CheckpointFuzzTest, SweepTruncationAtEveryByteIsRejected) {
  Corpus corpus = MakeTinyCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(4);
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);
  SweepPlan plan = MakeSweepPlan(corpus, 2, 2);
  ParallelExecutor executor(2);
  const std::string path = TempPath("sweep_trunc.bin");
  std::string error;
  bool saved = false;
  executor.RunSweep(sampler, plan, [&](SweepStage next) {
    // doc-propose is a barrier under every StageFusion setting (doc-accept
    // is fused away on this plan under kAuto).
    if (next != SweepStage::kDocPropose || saved) return;
    SweepCheckpoint captured;
    ASSERT_TRUE(sampler.CaptureSweepState(&captured));
    captured.iteration = 0;
    ASSERT_TRUE(SaveSweepCheckpoint(captured, path, &error)) << error;
    saved = true;
  });
  ASSERT_TRUE(saved);
  const std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 36u);

  const std::string cut = TempPath("sweep_trunc_cut.bin");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut, std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    SweepCheckpoint loaded;
    EXPECT_FALSE(LoadSweepCheckpoint(cut, &loaded, &error))
        << "accepted a sweep checkpoint truncated to " << len << " bytes";
  }
}

// ---------------------------------------------------------------------------
// In-flight sweep checkpointing: capture at a stage barrier, restore in a
// fresh sampler ("fresh process" state-wise), finish, and continue — the
// final assignments must be bit-identical to an uninterrupted run, at every
// combination of capture/resume thread widths.

class SweepRestoreBitIdentityTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(SweepRestoreBitIdentityTest, MidSweepRestoreMatchesUninterrupted) {
  const auto [capture_threads, resume_threads] = GetParam();
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.1;
  SweepPlan plan = MakeSweepPlan(corpus, 3, 2);
  constexpr uint32_t kTotalSweeps = 6;
  constexpr uint32_t kInterruptedSweep = 3;  // capture mid-sweep 3

  // Uninterrupted serial reference.
  WarpLdaSampler reference;
  reference.Init(corpus, config);
  ParallelExecutor serial(1);
  for (uint32_t i = 0; i < kTotalSweeps; ++i) {
    serial.RunSweep(reference, plan);
  }

  // Every barrier of the interrupted sweep is a legal capture point; check
  // them all (word-propose, doc-accept, doc-propose). The victim runs with
  // stage fusion off so all three barriers exist; the resumed sampler keeps
  // the fused default — a restore must resume the same trajectory under
  // either StageFusion setting, whichever produced the checkpoint.
  WarpLdaOptions unfused;
  unfused.fusion = StageFusion::kNone;
  for (SweepStage barrier : {SweepStage::kWordPropose, SweepStage::kDocAccept,
                             SweepStage::kDocPropose}) {
    WarpLdaSampler victim(unfused);
    victim.Init(corpus, config);
    ParallelExecutor capture_exec(capture_threads);
    for (uint32_t i = 0; i + 1 < kInterruptedSweep; ++i) {
      capture_exec.RunSweep(victim, plan);
    }
    const std::string path = TempPath(
        "sweep_resume_" + std::to_string(capture_threads) + "_" +
        std::to_string(resume_threads) + "_" +
        std::to_string(static_cast<int>(barrier)) + ".bin");
    std::string error;
    bool saved = false;
    capture_exec.RunSweep(victim, plan, [&](SweepStage next) {
      if (next != barrier || saved) return;
      SweepCheckpoint captured;
      ASSERT_TRUE(victim.CaptureSweepState(&captured));
      captured.iteration = kInterruptedSweep - 1;
      ASSERT_TRUE(SaveSweepCheckpoint(captured, path, &error)) << error;
      saved = true;
    });
    ASSERT_TRUE(saved);
    // `victim` dies here (the simulated kill); everything below uses only
    // the file.

    SweepCheckpoint loaded;
    ASSERT_TRUE(LoadSweepCheckpoint(path, &loaded, &error)) << error;
    EXPECT_EQ(loaded.next_stage, barrier);
    WarpLdaSampler resumed;
    resumed.Init(corpus, config);
    ASSERT_TRUE(resumed.RestoreSweepState(loaded, &error)) << error;
    ParallelExecutor resume_exec(resume_threads);
    resume_exec.FinishSweep(resumed, loaded.plan);
    for (uint32_t i = kInterruptedSweep; i < kTotalSweeps; ++i) {
      resume_exec.RunSweep(resumed, plan);
    }
    EXPECT_EQ(resumed.Assignments(), reference.Assignments())
        << "diverged after restoring at " << ToString(barrier) << " with "
        << capture_threads << "->" << resume_threads << " threads";
    EXPECT_EQ(resumed.topic_counts(), reference.topic_counts());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadWidths, SweepRestoreBitIdentityTest,
    ::testing::Values(std::pair<uint32_t, uint32_t>{1, 8},
                      std::pair<uint32_t, uint32_t>{2, 2},
                      std::pair<uint32_t, uint32_t>{8, 1}),
    [](const auto& pinfo) {
      return "capture" + std::to_string(pinfo.param.first) + "_resume" +
             std::to_string(pinfo.param.second);
    });

TEST(SweepRestoreTest, RestoreRejectsMismatchedRun) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);
  SweepCheckpoint captured;
  ASSERT_TRUE(sampler.CaptureSweepState(&captured));

  std::string error;
  WarpLdaSampler other;
  LdaConfig other_config = config;
  other_config.seed = config.seed + 1;
  other.Init(corpus, other_config);
  EXPECT_FALSE(other.RestoreSweepState(captured, &error));  // seed mismatch
  EXPECT_FALSE(error.empty());

  Corpus tiny = MakeTinyCorpus();
  WarpLdaSampler wrong_corpus;
  wrong_corpus.Init(tiny, config);
  EXPECT_FALSE(wrong_corpus.RestoreSweepState(captured, &error));
}

// ---------------------------------------------------------------------------
// Trainer-level durability: checkpoint_every in grid mode writes
// between-sweeps checkpoints that resume bit-identically; non-grid samplers
// resume their exact assignments through train.ckpt.

TEST(TrainerDurabilityTest, GridResumeFromIterationCheckpointIsBitIdentical) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.1;

  TrainOptions base_options;
  base_options.iterations = 9;
  base_options.eval_every = 0;
  base_options.grid_execution = true;
  base_options.sweep_plan = MakeSweepPlan(corpus, 2, 2);
  base_options.sweep_threads = 2;

  WarpLdaSampler uninterrupted;
  TrainResult reference = Train(uninterrupted, corpus, config, base_options);

  const std::string dir = TempPath("train_grid_resume");
  std::filesystem::remove_all(dir);
  TrainOptions first_leg = base_options;
  first_leg.iterations = 6;
  first_leg.checkpoint_dir = dir;
  first_leg.checkpoint_every = 3;
  WarpLdaSampler killed;
  Train(killed, corpus, config, first_leg);

  TrainOptions second_leg = base_options;  // full 9 iterations
  second_leg.checkpoint_dir = dir;
  second_leg.checkpoint_every = 3;
  second_leg.resume = true;
  WarpLdaSampler resumed;
  TrainResult continued = Train(resumed, corpus, config, second_leg);
  EXPECT_EQ(continued.assignments, reference.assignments);
  // Resume history restarts after the checkpointed iteration.
  ASSERT_FALSE(continued.history.empty());
  EXPECT_EQ(continued.history.front().iteration, 9u);
}

TEST(TrainerDurabilityTest, NonGridResumeRestoresExactCheckpointState) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  const std::string dir = TempPath("train_cgs_resume");
  std::filesystem::remove_all(dir);

  TrainOptions options;
  options.iterations = 4;
  options.eval_every = 0;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 2;
  auto first = CreateSampler("cgs");
  TrainResult run = Train(*first, corpus, config, options);

  // Resuming with the same target: the loop is already complete, so the
  // result is exactly the checkpointed state.
  options.resume = true;
  auto second = CreateSampler("cgs");
  TrainResult resumed = Train(*second, corpus, config, options);
  EXPECT_EQ(resumed.assignments, run.assignments);
}

TEST(TrainerDurabilityTest, ResumeWithCorruptCheckpointThrows) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  const std::string dir = TempPath("train_corrupt_resume");
  std::filesystem::remove_all(dir);
  TrainOptions options;
  options.iterations = 2;
  options.eval_every = 0;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  options.grid_execution = true;
  options.sweep_plan = MakeSweepPlan(corpus, 2, 2);
  WarpLdaSampler sampler;
  Train(sampler, corpus, config, options);

  // Flip a payload byte: resume must fail loudly, not retrain silently.
  std::vector<uint8_t> bytes = ReadAll(dir + "/sweep.ckpt");
  bytes[bytes.size() - 1] ^= 0x20;
  WriteAll(dir + "/sweep.ckpt", bytes);
  options.resume = true;
  WarpLdaSampler resumed;
  EXPECT_THROW(Train(resumed, corpus, config, options), std::runtime_error);
}

// The CI smoke test: a real SIGKILL mid-sweep (no destructors, no flushes —
// the closest a test gets to a power cut), then a resume in a fresh
// trainer, asserting the final model is bit-identical to a run that was
// never killed. Checkpoints at every stage barrier via checkpoint_stages.
TEST(CheckpointKillAndResumeTest, SigkillMidSweepResumesBitIdentical) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.1;

  TrainOptions options;
  options.iterations = 6;
  options.eval_every = 0;
  options.grid_execution = true;
  options.sweep_plan = MakeSweepPlan(corpus, 2, 2);
  options.sweep_threads = 2;

  WarpLdaSampler uninterrupted;
  TrainResult reference = Train(uninterrupted, corpus, config, options);

  const std::string dir = TempPath("kill_resume");
  std::filesystem::remove_all(dir);
  options.checkpoint_dir = dir;
  options.checkpoint_stages = true;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: train until the doc-propose barrier of sweep 4 (the mid-sweep
    // barrier present under every StageFusion setting), then die hard.
    TrainOptions child_options = options;
    child_options.checkpoint_hook = [](uint32_t completed,
                                       SweepStage next_stage) {
      if (completed == 3 && next_stage == SweepStage::kDocPropose) {
        kill(getpid(), SIGKILL);
      }
    };
    WarpLdaSampler victim;
    Train(victim, corpus, config, child_options);
    _exit(3);  // reaching here means the kill never fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of being killed";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_TRUE(FileExists(dir + "/sweep.ckpt"));

  options.resume = true;
  WarpLdaSampler resumed;
  TrainResult continued = Train(resumed, corpus, config, options);
  EXPECT_EQ(continued.assignments, reference.assignments);
  EXPECT_EQ(continued.final_log_likelihood, reference.final_log_likelihood);
}

// ---------------------------------------------------------------------------
// Delta-aware serving checkpoints: a base + delta chain on disk restores to
// exactly the model a full publish would serve.

TEST(ModelStoreCheckpointTest, DeltaChainRestoreEqualsFullPublishRestore) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);

  serve::ModelStoreOptions store_options;
  store_options.max_delta_fraction = 1.0;  // keep deltas deltas for the test
  serve::ModelStore store(store_options);
  const std::string dir = TempPath("model_chain");
  std::filesystem::remove_all(dir);
  std::string error;

  std::vector<WordId> changed;
  std::shared_ptr<const TopicModel> latest;
  for (int leg = 0; leg < 3; ++leg) {
    for (int i = 0; i < 2; ++i) sampler.Iterate();
    latest = sampler.ExportSharedModel(&changed);
    store.PublishDelta(latest, changed);
    ASSERT_TRUE(store.CheckpointTo(dir, &error)) << error;
  }
  // One base + two deltas on disk.
  size_t bases = 0;
  size_t deltas = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    bases += name.ends_with(".base");
    deltas += name.ends_with(".delta");
  }
  EXPECT_EQ(bases, 1u);
  EXPECT_EQ(deltas, 2u);

  serve::ModelStore restored(store_options);
  ASSERT_TRUE(restored.RestoreFrom(dir, &error)) << error;
  ASSERT_NE(restored.Current(), nullptr);
  // The replayed chain reconstructs the last published model exactly, and
  // the version continues where the checkpointing process stopped.
  EXPECT_TRUE(restored.Current()->model() == *latest);
  EXPECT_EQ(restored.version(), store.version());

  // Serving reads agree with a direct full publish of the same model.
  serve::ModelStore direct(store_options);
  auto direct_snapshot = direct.Publish(latest);
  auto restored_snapshot = restored.Current();
  for (WordId w = 0; w < latest->num_words(); w += 7) {
    for (uint32_t k = 0; k < latest->num_topics(); ++k) {
      EXPECT_EQ(restored_snapshot->Phi(w, k), direct_snapshot->Phi(w, k));
    }
  }

  // A restored store continues the chain: the next checkpoint of a new
  // publish is a delta, not a fresh base.
  for (int i = 0; i < 2; ++i) sampler.Iterate();
  latest = sampler.ExportSharedModel(&changed);
  restored.PublishDelta(latest, changed);
  ASSERT_TRUE(restored.CheckpointTo(dir, &error)) << error;
  deltas = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    deltas += entry.path().filename().string().ends_with(".delta");
  }
  EXPECT_EQ(deltas, 3u);

  // And the extended chain still restores, matching the newest model.
  serve::ModelStore again(store_options);
  ASSERT_TRUE(again.RestoreFrom(dir, &error)) << error;
  EXPECT_TRUE(again.Current()->model() == *latest);
}

TEST(ModelStoreCheckpointTest, RestoreRejectsBrokenChains) {
  serve::ModelStore empty_store;
  std::string error;
  const std::string missing = TempPath("no_such_chain");
  std::filesystem::remove_all(missing);
  EXPECT_FALSE(empty_store.RestoreFrom(missing, &error));
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(empty_store.CheckpointTo(missing, &error));  // nothing published

  // Corrupt one delta in an otherwise valid chain.
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);
  serve::ModelStoreOptions store_options;
  store_options.max_delta_fraction = 1.0;
  serve::ModelStore store(store_options);
  const std::string dir = TempPath("model_chain_broken");
  std::filesystem::remove_all(dir);
  std::vector<WordId> changed;
  for (int leg = 0; leg < 2; ++leg) {
    sampler.Iterate();
    // Two statements: the export resizes `changed`, so the span handed to
    // PublishDelta must be formed only afterwards.
    auto model = sampler.ExportSharedModel(&changed);
    store.PublishDelta(model, changed);
    ASSERT_TRUE(store.CheckpointTo(dir, &error)) << error;
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().ends_with(".delta")) {
      std::vector<uint8_t> bytes = ReadAll(entry.path().string());
      bytes[bytes.size() / 2] ^= 0x10;
      WriteAll(entry.path().string(), bytes);
    }
  }
  serve::ModelStore restored(store_options);
  EXPECT_FALSE(restored.RestoreFrom(dir, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(restored.Current(), nullptr);  // left unchanged on failure
}

// ---------------------------------------------------------------------------
// Streaming trainer state: save/load round-trips the exact online state,
// including the RNG, so a restored trainer walks the same trajectory.

TEST(StreamingStateTest, SaveLoadContinuesExactTrajectory) {
  Corpus corpus = MakeCorpus();
  StreamingOptions options;
  options.num_topics = 6;
  options.batch_size = 32;
  options.seed = 41;

  StreamingWarpLda original(corpus.num_words(), options);
  original.ProcessCorpus(corpus, 1);
  const std::string path = TempPath("streaming_state.bin");
  std::string error;
  ASSERT_TRUE(original.SaveState(path, &error)) << error;

  StreamingWarpLda restored(corpus.num_words(), options);
  ASSERT_TRUE(restored.LoadState(path, &error)) << error;
  EXPECT_EQ(restored.batches_seen(), original.batches_seen());
  EXPECT_TRUE(restored.ExportModel() == original.ExportModel());

  // Both continue identically: the RNG state traveled with the checkpoint.
  original.ProcessCorpus(corpus, 1);
  restored.ProcessCorpus(corpus, 1);
  EXPECT_TRUE(restored.ExportModel() == original.ExportModel());
}

TEST(StreamingStateTest, LoadRejectsMismatchedTrainer) {
  Corpus corpus = MakeCorpus();
  StreamingOptions options;
  options.num_topics = 6;
  StreamingWarpLda trainer(corpus.num_words(), options);
  trainer.ProcessCorpus(corpus, 1);
  const std::string path = TempPath("streaming_mismatch.bin");
  std::string error;
  ASSERT_TRUE(trainer.SaveState(path, &error)) << error;

  StreamingOptions other = options;
  other.num_topics = 8;
  StreamingWarpLda wrong_topics(corpus.num_words(), other);
  EXPECT_FALSE(wrong_topics.LoadState(path, &error));

  StreamingOptions reseeded = options;
  reseeded.seed = 999;
  StreamingWarpLda wrong_seed(corpus.num_words(), reseeded);
  EXPECT_FALSE(wrong_seed.LoadState(path, &error));
}

// ---------------------------------------------------------------------------
// The original cross-sampler resume property suite.

TEST(CheckpointTest, RestoreRejectsWrongCorpus) {
  Corpus corpus = MakeCorpus();
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.assignments.assign(corpus.num_tokens() + 5, 0);
  auto sampler = CreateSampler("warplda");
  std::string error;
  EXPECT_FALSE(RestoreSampler(*sampler, corpus, checkpoint, &error));
  EXPECT_FALSE(error.empty());
}

// The key property: restoring must reproduce the checkpointed state exactly,
// and continued training must behave sensibly (likelihood stays at the
// converged band rather than restarting from random).
class CheckpointResumeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointResumeTest, RestoredStateMatchesAndTrainingContinues) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.1;

  auto original = CreateSampler(GetParam());
  original->Init(corpus, config);
  for (int i = 0; i < 20; ++i) original->Iterate();
  double converged_ll = JointLogLikelihood(
      corpus, original->Assignments(), config.num_topics, config.alpha,
      config.beta);

  TrainingCheckpoint checkpoint;
  checkpoint.config = config;
  checkpoint.iteration = 20;
  checkpoint.assignments = original->Assignments();
  std::string path = TempPath("resume_" + GetParam() + ".bin");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;

  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  auto resumed = CreateSampler(GetParam());
  ASSERT_TRUE(RestoreSampler(*resumed, corpus, loaded, &error)) << error;
  EXPECT_EQ(resumed->Assignments(), checkpoint.assignments);

  // One more sweep must stay near the converged likelihood (a sampler whose
  // counts were not rebuilt correctly would collapse or diverge).
  resumed->Iterate();
  double after_ll = JointLogLikelihood(corpus, resumed->Assignments(),
                                       config.num_topics, config.alpha,
                                       config.beta);
  EXPECT_GT(after_ll, converged_ll + 0.05 * std::abs(converged_ll) * -1.0);
  EXPECT_NEAR(after_ll, converged_ll, 0.05 * std::abs(converged_ll));
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, CheckpointResumeTest,
                         ::testing::Values("cgs", "sparselda", "aliaslda",
                                           "f+lda", "lightlda", "warplda"),
                         [](const auto& pinfo) {
                           std::string name = pinfo.param;
                           for (auto& c : name) {
                             if (c == '+') c = 'p';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Stream semantics of the frame readers/writers. A pipe (like a socket) may
// deliver one byte per read() and accept less than asked per write(); the
// helpers must loop, and must retry EINTR instead of failing — these are the
// seams the distributed transport (src/dist/) reads frames through.

std::vector<uint8_t> TestPayload(size_t size) {
  std::vector<uint8_t> payload(size);
  for (size_t i = 0; i < size; ++i) payload[i] = static_cast<uint8_t>(i * 7);
  return payload;
}

TEST(FrameStreamTest, ReadFrameFdSurvivesByteDribbledPipe) {
  const std::vector<uint8_t> payload = TestPayload(513);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameKind::kDistMessage, payload);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // Dribble the frame one byte at a time: every read() on the other end
  // sees a 1-byte short read, for the header and the payload both.
  std::thread writer([&] {
    for (uint8_t byte : wire) {
      ASSERT_EQ(::write(fds[1], &byte, 1), 1);
    }
    ::close(fds[1]);
  });

  std::vector<uint8_t> got;
  std::string error;
  bool eof = true;
  EXPECT_TRUE(ReadFrameFd(fds[0], FrameKind::kDistMessage, 1 << 20, &got,
                          &error, &eof))
      << error;
  EXPECT_FALSE(eof);
  EXPECT_EQ(got, payload);

  // The stream then ends cleanly: the next read reports EOF, not an error.
  EXPECT_FALSE(ReadFrameFd(fds[0], FrameKind::kDistMessage, 1 << 20, &got,
                           &error, &eof));
  EXPECT_TRUE(eof);
  writer.join();
  ::close(fds[0]);
}

TEST(FrameStreamTest, WriteFrameFdSurvivesShortWritesIntoFullPipe) {
  // Larger than any default pipe buffer, so write() must block and return
  // short while the reader drains in tiny sips.
  const std::vector<uint8_t> payload = TestPayload(1 << 20);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  std::vector<uint8_t> got;
  std::string read_error;
  bool read_ok = false;
  std::thread reader([&] {
    read_ok = ReadFrameFd(fds[0], FrameKind::kDistMessage, 2 << 20, &got,
                          &read_error, nullptr);
    ::close(fds[0]);
  });

  std::string error;
  EXPECT_TRUE(WriteFrameFd(fds[1], FrameKind::kDistMessage, payload, &error))
      << error;
  ::close(fds[1]);
  reader.join();
  EXPECT_TRUE(read_ok) << read_error;
  EXPECT_EQ(got, payload);
}

TEST(FrameStreamTest, TruncatedStreamReportsErrorNotEof) {
  const std::vector<uint8_t> payload = TestPayload(300);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameKind::kDistMessage, payload);
  // Cut mid-header and mid-payload: both are hard errors (the peer died
  // mid-frame), never a clean EOF.
  for (const size_t cut : {kFrameHeaderBytes / 2, wire.size() - 10}) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], wire.data(), cut), static_cast<ssize_t>(cut));
    ::close(fds[1]);
    std::vector<uint8_t> got;
    std::string error;
    bool eof = true;
    EXPECT_FALSE(ReadFrameFd(fds[0], FrameKind::kDistMessage, 1 << 20, &got,
                             &error, &eof));
    EXPECT_FALSE(eof) << "a mid-frame cut must not look like a clean EOF";
    EXPECT_FALSE(error.empty());
    ::close(fds[0]);
  }
}

// EINTR: signals without SA_RESTART make blocked read()/write() return
// -1/EINTR; the helpers must retry, not fail. A sibling thread peppers the
// blocked reader with signals while dribbling bytes between them.
void FrameStreamSigusr1(int) {}

TEST(FrameStreamTest, ReadFrameFdRetriesEintr) {
  struct sigaction action {};
  struct sigaction old_action {};
  action.sa_handler = FrameStreamSigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &action, &old_action), 0);

  const std::vector<uint8_t> payload = TestPayload(4096);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameKind::kDistMessage, payload);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pthread_t reader_thread = pthread_self();
  std::thread writer([&] {
    size_t sent = 0;
    while (sent < wire.size()) {
      // Interrupt the (likely blocked) reader, then feed it a sliver.
      pthread_kill(reader_thread, SIGUSR1);
      const size_t chunk = std::min<size_t>(64, wire.size() - sent);
      ASSERT_EQ(::write(fds[1], wire.data() + sent, chunk),
                static_cast<ssize_t>(chunk));
      sent += chunk;
      pthread_kill(reader_thread, SIGUSR1);
    }
    ::close(fds[1]);
  });

  std::vector<uint8_t> got;
  std::string error;
  EXPECT_TRUE(ReadFrameFd(fds[0], FrameKind::kDistMessage, 1 << 20, &got,
                          &error, nullptr))
      << error;
  EXPECT_EQ(got, payload);
  writer.join();
  ::close(fds[0]);
  ASSERT_EQ(sigaction(SIGUSR1, &old_action, nullptr), 0);
}

}  // namespace
}  // namespace warplda

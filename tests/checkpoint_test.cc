#include "core/checkpoint.h"

#include <fstream>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"

namespace warplda {
namespace {

Corpus MakeCorpus() {
  SyntheticConfig config;
  config.num_docs = 80;
  config.vocab_size = 150;
  config.mean_doc_length = 20;
  config.seed = 71;
  return GenerateLdaCorpus(config).corpus;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(8);
  checkpoint.config.mh_steps = 3;
  checkpoint.iteration = 17;
  checkpoint.assignments = {0, 1, 2, 7, 3, 3};
  std::string path = testing::TempDir() + "/ckpt.bin";
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;

  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.config.num_topics, 8u);
  EXPECT_EQ(loaded.config.mh_steps, 3u);
  EXPECT_DOUBLE_EQ(loaded.config.alpha, checkpoint.config.alpha);
  EXPECT_EQ(loaded.iteration, 17u);
  EXPECT_EQ(loaded.assignments, checkpoint.assignments);
}

TEST(CheckpointTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "nonsense";
  }
  TrainingCheckpoint checkpoint;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint(path, &checkpoint, &error));
}

TEST(CheckpointTest, LoadRejectsOutOfRangeAssignments) {
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.assignments = {0, 9};  // 9 >= K
  std::string path = testing::TempDir() + "/ckpt_range.bin";
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;
  TrainingCheckpoint loaded;
  EXPECT_FALSE(LoadCheckpoint(path, &loaded, &error));
}

TEST(CheckpointTest, RestoreRejectsWrongCorpus) {
  Corpus corpus = MakeCorpus();
  TrainingCheckpoint checkpoint;
  checkpoint.config = LdaConfig::PaperDefaults(4);
  checkpoint.assignments.assign(corpus.num_tokens() + 5, 0);
  auto sampler = CreateSampler("warplda");
  std::string error;
  EXPECT_FALSE(RestoreSampler(*sampler, corpus, checkpoint, &error));
  EXPECT_FALSE(error.empty());
}

// The key property: restoring must reproduce the checkpointed state exactly,
// and continued training must behave sensibly (likelihood stays at the
// converged band rather than restarting from random).
class CheckpointResumeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointResumeTest, RestoredStateMatchesAndTrainingContinues) {
  Corpus corpus = MakeCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.1;

  auto original = CreateSampler(GetParam());
  original->Init(corpus, config);
  for (int i = 0; i < 20; ++i) original->Iterate();
  double converged_ll = JointLogLikelihood(
      corpus, original->Assignments(), config.num_topics, config.alpha,
      config.beta);

  TrainingCheckpoint checkpoint;
  checkpoint.config = config;
  checkpoint.iteration = 20;
  checkpoint.assignments = original->Assignments();
  std::string path = testing::TempDir() + "/resume_" + GetParam() + ".bin";
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path, &error)) << error;

  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded, &error)) << error;
  auto resumed = CreateSampler(GetParam());
  ASSERT_TRUE(RestoreSampler(*resumed, corpus, loaded, &error)) << error;
  EXPECT_EQ(resumed->Assignments(), checkpoint.assignments);

  // One more sweep must stay near the converged likelihood (a sampler whose
  // counts were not rebuilt correctly would collapse or diverge).
  resumed->Iterate();
  double after_ll = JointLogLikelihood(corpus, resumed->Assignments(),
                                       config.num_topics, config.alpha,
                                       config.beta);
  EXPECT_GT(after_ll, converged_ll + 0.05 * std::abs(converged_ll) * -1.0);
  EXPECT_NEAR(after_ll, converged_ll, 0.05 * std::abs(converged_ll));
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, CheckpointResumeTest,
                         ::testing::Values("cgs", "sparselda", "aliaslda",
                                           "f+lda", "lightlda", "warplda"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '+') c = 'p';
                           }
                           return name;
                         });

}  // namespace
}  // namespace warplda

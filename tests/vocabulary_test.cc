#include "corpus/vocabulary.h"

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInInsertionOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1u);
  EXPECT_EQ(vocab.GetOrAdd("gamma"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary vocab;
  WordId id = vocab.GetOrAdd("word");
  EXPECT_EQ(vocab.GetOrAdd("word"), id);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, FindMissingReturnsSentinel) {
  Vocabulary vocab;
  vocab.GetOrAdd("present");
  EXPECT_EQ(vocab.Find("absent"), Vocabulary::kNotFound);
  EXPECT_EQ(vocab.Find("present"), 0u);
}

TEST(VocabularyTest, WordLookupRoundTrip) {
  Vocabulary vocab;
  vocab.GetOrAdd("one");
  vocab.GetOrAdd("two");
  EXPECT_EQ(vocab.word(0), "one");
  EXPECT_EQ(vocab.word(1), "two");
}

TEST(VocabularyTest, CaseSensitive) {
  Vocabulary vocab;
  WordId lower = vocab.GetOrAdd("word");
  WordId upper = vocab.GetOrAdd("Word");
  EXPECT_NE(lower, upper);
}

TEST(VocabularyTest, HandlesManyWords) {
  Vocabulary vocab;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(vocab.GetOrAdd("w" + std::to_string(i)),
              static_cast<WordId>(i));
  }
  EXPECT_EQ(vocab.Find("w5000"), 5000u);
  EXPECT_EQ(vocab.word(9999), "w9999");
}

}  // namespace
}  // namespace warplda

// Tiered sparse serving snapshots vs the dense reference layout, and the
// incremental (delta) publish path.
//
// The contract under test is *bit*-identity: the sparse layout resolves
// φ̂/q_word through a shared β-floor plus per-word correction spans, but it
// must evaluate the exact same IEEE expressions as the dense V×K layout, so
// every read — and therefore every sampled topic and every θ̂ — matches the
// dense snapshot exactly. EXPECT_EQ on doubles below is deliberate.
#include "serve/model_store.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/streaming.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/corpus.h"
#include "corpus/synthetic.h"
#include "serve/engine.h"
#include "util/rng.h"

namespace warplda {
namespace {

using serve::ModelSnapshot;
using serve::ModelStore;
using serve::ModelStoreOptions;
using serve::SharedInferenceEngine;
using serve::SnapshotLayout;

// A randomized corpus + assignments fixture with deliberately hostile word
// rows: word 0 is pinned to a single topic, the top `kZeroTail` ids never
// occur (all-zero rows), and everything in between gets random topics.
constexpr WordId kVocab = 60;
constexpr WordId kZeroTail = 8;
constexpr uint32_t kTopics = 7;

struct Fixture {
  Corpus corpus;
  std::vector<TopicId> assignments;

  TopicModel Model() const {
    return TopicModel(corpus, assignments, kTopics, 0.2, 0.05);
  }
  std::shared_ptr<const TopicModel> SharedModel() const {
    return std::make_shared<const TopicModel>(Model());
  }
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  CorpusBuilder builder;
  builder.set_num_words(kVocab);
  std::vector<std::vector<WordId>> docs(12);
  for (auto& doc : docs) {
    const uint32_t len = 10 + rng.NextInt(30);
    for (uint32_t i = 0; i < len; ++i) {
      doc.push_back(rng.NextInt(kVocab - kZeroTail));
    }
    doc.push_back(0);  // word 0 occurs in every document
    builder.AddDocument(doc);
  }
  Fixture fixture;
  fixture.corpus = builder.Build();
  fixture.assignments.resize(fixture.corpus.num_tokens());
  for (TokenIdx t = 0; t < fixture.corpus.num_tokens(); ++t) {
    // Word 0 is single-topic (always topic 1); everything else random.
    fixture.assignments[t] =
        fixture.corpus.token_word(t) == 0 ? 1 : rng.NextInt(kTopics);
  }
  return fixture;
}

// Randomly reassigns the topics of `fraction` of the tokens.
void Mutate(Fixture& fixture, double fraction, uint64_t seed) {
  Rng rng(seed);
  for (TokenIdx t = 0; t < fixture.corpus.num_tokens(); ++t) {
    if (rng.NextDouble() < fraction) {
      fixture.assignments[t] = rng.NextInt(kTopics);
    }
  }
}

void ExpectSnapshotsBitIdentical(const ModelSnapshot& a,
                                 const ModelSnapshot& b) {
  ASSERT_EQ(a.num_words(), b.num_words());
  ASSERT_EQ(a.num_topics(), b.num_topics());
  for (WordId w = 0; w < a.num_words(); ++w) {
    SCOPED_TRACE(w);
    EXPECT_EQ(a.word_count_prob(w), b.word_count_prob(w));
    for (TopicId k = 0; k < a.num_topics(); ++k) {
      EXPECT_EQ(a.Phi(w, k), b.Phi(w, k));
      EXPECT_EQ(a.QWord(w, k), b.QWord(w, k));
    }
    // Alias tables have no public state beyond their sampling behavior:
    // identical tables must reproduce the same draw sequence.
    Rng rng_a(909), rng_b(909);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(a.word_alias(w).Sample(rng_a), b.word_alias(w).Sample(rng_b));
    }
  }
}

TEST(SparseSnapshotTest, MatchesDenseOnRandomModels) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    auto model = MakeFixture(seed).SharedModel();
    ModelSnapshot dense(model, 1, SnapshotLayout::kDense);
    ModelSnapshot sparse(model, 1, SnapshotLayout::kSparseTiered);
    EXPECT_EQ(dense.layout(), SnapshotLayout::kDense);
    EXPECT_EQ(sparse.layout(), SnapshotLayout::kSparseTiered);
    ExpectSnapshotsBitIdentical(dense, sparse);
  }
}

TEST(SparseSnapshotTest, AllZeroAndSingleTopicRows) {
  Fixture fixture = MakeFixture(3);
  auto model = fixture.SharedModel();
  ModelSnapshot sparse(model, 1);
  ModelSnapshot dense(model, 1, SnapshotLayout::kDense);

  // All-zero rows: never-seen words read pure floor, bit-equal to dense.
  for (WordId w = kVocab - kZeroTail; w < kVocab; ++w) {
    ASSERT_TRUE(model->word_topics(w).empty());
    EXPECT_EQ(sparse.word_count_prob(w), 0.0);
    for (TopicId k = 0; k < kTopics; ++k) {
      EXPECT_EQ(sparse.Phi(w, k), dense.Phi(w, k));
    }
    // The degenerate alias still answers (uniform over outcome 0).
    Rng rng(4);
    EXPECT_EQ(sparse.word_alias(w).Sample(rng), 0u);
  }

  // Single-topic row: word 0 only ever carries topic 1.
  ASSERT_EQ(model->word_topics(0).size(), 1u);
  ASSERT_EQ(model->word_topics(0)[0].first, 1u);
  for (TopicId k = 0; k < kTopics; ++k) {
    EXPECT_EQ(sparse.Phi(0, k), dense.Phi(0, k));
    EXPECT_EQ(sparse.QWord(0, k), dense.QWord(0, k));
  }
}

TEST(SparseSnapshotTest, FootprintIsSparse) {
  // A wide model (large K) with short rows: the dense layout pays V×K
  // doubles, the tiered layout only K floor entries + nnz corrections.
  CorpusBuilder builder;
  constexpr WordId kWideVocab = 500;
  constexpr uint32_t kWideTopics = 256;
  builder.set_num_words(kWideVocab);
  std::vector<WordId> doc;
  for (WordId w = 0; w < kWideVocab; ++w) doc.push_back(w);
  builder.AddDocument(doc);
  Corpus corpus = builder.Build();
  std::vector<TopicId> z(corpus.num_tokens());
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    z[t] = static_cast<TopicId>(t % 3);  // nnz = 1 per word
  }
  auto model = std::make_shared<const TopicModel>(
      TopicModel(corpus, z, kWideTopics, 0.1, 0.01));
  ModelSnapshot dense(model, 1, SnapshotLayout::kDense);
  ModelSnapshot sparse(model, 1);
  EXPECT_GT(dense.ApproxBytes(), 5 * sparse.ApproxBytes());
}

TEST(DeltaPublishTest, MatchesFullPublishAfterRandomizedUpdates) {
  Fixture fixture = MakeFixture(11);
  // The randomized mutations below can touch well over max_delta_fraction
  // of this tiny vocabulary; disable the oversized-delta fallback so every
  // round exercises the actual delta-build machinery.
  ModelStoreOptions options;
  options.max_delta_fraction = 1.0;
  ModelStore store(options);
  auto previous_model = fixture.SharedModel();
  store.Publish(previous_model);
  ASSERT_EQ(store.Current()->arena_chain(), 1u);

  for (int round = 1; round <= 5; ++round) {
    SCOPED_TRACE(round);
    Mutate(fixture, /*fraction=*/0.08, /*seed=*/100 + round);
    auto model = fixture.SharedModel();
    const std::vector<WordId> changed = model->ChangedWords(*previous_model);
    auto delta_snapshot = store.PublishDelta(model, changed);
    EXPECT_EQ(delta_snapshot, store.Current());
    EXPECT_EQ(delta_snapshot->version(), 1u + round);
    EXPECT_EQ(delta_snapshot->arena_chain(), 1u + round);

    ModelSnapshot full(model, delta_snapshot->version());
    ExpectSnapshotsBitIdentical(full, *delta_snapshot);

    // End-to-end: the engine over the delta snapshot samples bit-identically
    // to a fresh full snapshot of the same model.
    SharedInferenceEngine delta_engine(delta_snapshot);
    SharedInferenceEngine full_engine(
        std::make_shared<const ModelSnapshot>(model, 1));
    const std::vector<WordId> doc = {0, 3, 9, 3, 17, 25, 1, 0, 44};
    const auto a = delta_engine.InferTheta(doc, 1234 + round);
    const auto b = full_engine.InferTheta(doc, 1234 + round);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    previous_model = model;
  }
}

TEST(DeltaPublishTest, EmptyDeltaSharesEverything) {
  Fixture fixture = MakeFixture(21);
  ModelStore store;
  auto model = fixture.SharedModel();
  store.Publish(model);
  auto snapshot = store.PublishDelta(model, std::vector<WordId>{});
  EXPECT_EQ(snapshot->version(), 2u);
  EXPECT_EQ(snapshot->arena_chain(), 1u);  // no arena appended
  ExpectSnapshotsBitIdentical(*store.Current(), ModelSnapshot(model, 2));
}

TEST(DeltaPublishTest, ChainCompactsAtMaxArenaChain) {
  Fixture fixture = MakeFixture(31);
  ModelStoreOptions options;
  options.max_arena_chain = 3;
  options.max_delta_fraction = 1.0;  // only the chain cap should compact here
  ModelStore store(options);
  auto previous_model = fixture.SharedModel();
  store.Publish(previous_model);

  std::vector<size_t> chains;
  for (int round = 0; round < 5; ++round) {
    Mutate(fixture, 0.05, 200 + round);
    auto model = fixture.SharedModel();
    auto snapshot =
        store.PublishDelta(model, model->ChangedWords(*previous_model));
    chains.push_back(snapshot->arena_chain());
    ExpectSnapshotsBitIdentical(*snapshot, ModelSnapshot(model, 1));
    previous_model = model;
  }
  // 1 → 2 → 3 (cap) → compacted full rebuild at 1 → 2.
  EXPECT_EQ(chains, (std::vector<size_t>{2, 3, 1, 2, 3}));
}

TEST(DeltaPublishTest, FallsBackToFullPublishWhenNotApplicable) {
  Fixture fixture = MakeFixture(41);
  auto model = fixture.SharedModel();
  const std::vector<WordId> all(1, 0);

  // No current snapshot yet → full publish.
  ModelStore empty_store;
  auto first = empty_store.PublishDelta(model, all);
  EXPECT_EQ(first->version(), 1u);
  EXPECT_EQ(first->arena_chain(), 1u);

  // Dense store → delta degrades to a dense full publish.
  ModelStoreOptions dense_opts;
  dense_opts.layout = SnapshotLayout::kDense;
  ModelStore dense_store(dense_opts);
  dense_store.Publish(model);
  auto dense_snapshot = dense_store.PublishDelta(model, all);
  EXPECT_EQ(dense_snapshot->version(), 2u);
  EXPECT_EQ(dense_snapshot->layout(), SnapshotLayout::kDense);

  // Vocabulary mismatch → full publish (and correct serving state).
  ModelStore store;
  store.Publish(model);
  CorpusBuilder builder;
  builder.set_num_words(kVocab + 5);
  builder.AddDocument(std::vector<WordId>{0, 1, kVocab + 4});
  Corpus grown = builder.Build();
  auto grown_model = std::make_shared<const TopicModel>(
      TopicModel(grown, {0, 1, 2}, kTopics, 0.2, 0.05));
  auto snapshot = store.PublishDelta(grown_model, all);
  EXPECT_EQ(snapshot->num_words(), kVocab + 5);
  EXPECT_EQ(snapshot->arena_chain(), 1u);
  ExpectSnapshotsBitIdentical(*snapshot, ModelSnapshot(grown_model, 1));
}

TEST(DeltaPublishTest, OversizedDeltaCompactsInsteadOfChaining) {
  Fixture fixture = MakeFixture(71);
  ModelStore store;  // default max_delta_fraction = 0.25
  auto model = fixture.SharedModel();
  store.Publish(model);

  // A small delta (1 word ≪ 25% of V) chains.
  auto chained = store.PublishDelta(model, std::vector<WordId>{3});
  EXPECT_EQ(chained->arena_chain(), 2u);

  // A delta listing half the vocabulary would strand a near-model-sized
  // generation of superseded rows; it must compact via a full rebuild.
  std::vector<WordId> half(kVocab / 2);
  std::iota(half.begin(), half.end(), 0);
  auto compacted = store.PublishDelta(model, half);
  EXPECT_EQ(compacted->arena_chain(), 1u);
  EXPECT_EQ(compacted->version(), 3u);
  ExpectSnapshotsBitIdentical(*compacted, ModelSnapshot(model, 1));
}

TEST(DeltaPublishTest, OutOfRangeAndDuplicateChangedWordsAreTolerated) {
  Fixture fixture = MakeFixture(51);
  ModelStore store;
  auto model = fixture.SharedModel();
  store.Publish(model);
  const std::vector<WordId> messy = {3, 3, 0, kVocab + 100, 3, kVocab, 7, 0};
  auto snapshot = store.PublishDelta(model, messy);
  ExpectSnapshotsBitIdentical(*snapshot, ModelSnapshot(model, 1));
}

// The regression gate from the issue: inference output (sampled topics →
// θ̂) under fixed seeds is bit-identical between dense and sparse
// snapshots, through the public engine.
TEST(EngineBitIdentityTest, DenseAndSparseEnginesAgreeExactly) {
  SyntheticConfig synth;
  synth.num_docs = 200;
  synth.vocab_size = 300;
  synth.num_topics = 6;
  synth.mean_doc_length = 30;
  synth.seed = 77;
  SyntheticCorpus data = GenerateLdaCorpus(synth);

  LdaConfig config = LdaConfig::PaperDefaults(6);
  WarpLdaSampler sampler;
  TrainOptions train_options;
  train_options.iterations = 15;
  train_options.eval_every = 0;
  Train(sampler, data.corpus, config, train_options);
  auto model = sampler.ExportSharedModel();

  SharedInferenceEngine dense(std::make_shared<const ModelSnapshot>(
      model, 1, SnapshotLayout::kDense));
  SharedInferenceEngine sparse(std::make_shared<const ModelSnapshot>(
      model, 1, SnapshotLayout::kSparseTiered));
  for (DocId d = 0; d < 32; ++d) {
    SCOPED_TRACE(d);
    auto tokens = data.corpus.doc_tokens(d);
    std::vector<WordId> doc(tokens.begin(), tokens.end());
    const auto theta_dense = dense.InferTheta(doc, 1000 + d);
    const auto theta_sparse = sparse.InferTheta(doc, 1000 + d);
    ASSERT_EQ(theta_dense.size(), theta_sparse.size());
    for (size_t k = 0; k < theta_dense.size(); ++k) {
      EXPECT_EQ(theta_dense[k], theta_sparse[k]);
    }
    EXPECT_EQ(dense.MostLikelyTopic(doc, 1000 + d),
              sparse.MostLikelyTopic(doc, 1000 + d));
  }
}

// A fresh Inferencer and the serving engine share MhInferTheta and read
// bit-identical model views, so their first draw under the same seed must
// match exactly — offline and serving inference cannot drift.
TEST(EngineBitIdentityTest, InferencerMatchesSparseEngineOnFirstDraw) {
  Fixture fixture = MakeFixture(61);
  auto model = fixture.SharedModel();
  const std::vector<WordId> doc = {0, 2, 4, 8, 16, 2, 0};
  const uint64_t seed = 555;

  InferenceOptions options;
  options.seed = seed;
  Inferencer lazy(model, options);
  Inferencer eager(model, options);
  eager.Prebuild();
  SharedInferenceEngine engine(std::make_shared<const ModelSnapshot>(model, 1));

  const auto theta_engine = engine.InferTheta(doc, seed);
  const auto theta_lazy = lazy.InferTheta(doc);
  const auto theta_eager = eager.InferTheta(doc);
  for (size_t k = 0; k < theta_engine.size(); ++k) {
    EXPECT_EQ(theta_engine[k], theta_lazy[k]);
    EXPECT_EQ(theta_engine[k], theta_eager[k]);
  }
}

// The trainer→server incremental publish loop, end to end: the sampler
// reports its changed-word set, PublishDelta consumes it, and serving
// output matches a from-scratch full publish exactly.
TEST(TrainerDeltaExportTest, WarpLdaSamplerChangedWordsDriveDeltaPublish) {
  SyntheticConfig synth;
  synth.num_docs = 150;
  synth.vocab_size = 250;
  synth.num_topics = 5;
  synth.mean_doc_length = 25;
  synth.seed = 13;
  SyntheticCorpus data = GenerateLdaCorpus(synth);

  LdaConfig config = LdaConfig::PaperDefaults(5);
  WarpLdaSampler sampler;
  sampler.Init(data.corpus, config);

  ModelStore store;
  std::vector<WordId> changed;
  auto model = sampler.ExportSharedModel(&changed);
  // First export: everything is new.
  EXPECT_EQ(changed.size(), model->num_words());
  store.PublishDelta(model, changed);

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    sampler.Iterate();
    auto previous = model;
    model = sampler.ExportSharedModel(&changed);
    EXPECT_EQ(changed, model->ChangedWords(*previous));
    auto snapshot = store.PublishDelta(model, changed);
    ExpectSnapshotsBitIdentical(*snapshot, ModelSnapshot(model, 1));
  }
}

TEST(TrainerDeltaExportTest, StreamingChangedWordsDriveDeltaPublish) {
  SyntheticConfig synth;
  synth.num_docs = 200;
  synth.vocab_size = 200;
  synth.num_topics = 4;
  synth.mean_doc_length = 20;
  synth.seed = 19;
  SyntheticCorpus data = GenerateLdaCorpus(synth);

  StreamingOptions options;
  options.num_topics = 4;
  options.batch_size = 64;
  StreamingWarpLda streaming(synth.vocab_size, options);
  streaming.ProcessCorpus(data.corpus, 1);

  ModelStore store;
  std::vector<WordId> changed;
  auto model = streaming.ExportSharedModel(&changed);
  EXPECT_EQ(changed.size(), model->num_words());
  store.PublishDelta(model, changed);

  streaming.ProcessCorpus(data.corpus, 1);
  auto previous = model;
  model = streaming.ExportSharedModel(&changed);
  EXPECT_EQ(changed, model->ChangedWords(*previous));
  auto snapshot = store.PublishDelta(model, changed);
  ExpectSnapshotsBitIdentical(*snapshot, ModelSnapshot(model, 1));
}

}  // namespace
}  // namespace warplda

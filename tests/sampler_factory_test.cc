#include <algorithm>
#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "baselines/sampler.h"

namespace warplda {
namespace {

std::string Lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

TEST(SamplerFactoryTest, EveryRegisteredNameConstructs) {
  for (const std::string& name : SamplerNames()) {
    auto sampler = CreateSampler(name);
    ASSERT_NE(sampler, nullptr) << name;
  }
}

TEST(SamplerFactoryTest, NameRoundTripsThroughRegistry) {
  // The factory key is the lowercased paper name ("F+LDA" -> "f+lda"), so
  // name() must map back onto the registry entry that produced the sampler.
  for (const std::string& name : SamplerNames()) {
    auto sampler = CreateSampler(name);
    ASSERT_NE(sampler, nullptr) << name;
    EXPECT_EQ(Lowercase(sampler->name()), name);
  }
}

TEST(SamplerFactoryTest, NamesAreUniqueAndNonEmpty) {
  auto names = SamplerNames();
  EXPECT_FALSE(names.empty());
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& name : names) EXPECT_FALSE(name.empty());
}

TEST(SamplerFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateSampler("definitely-not-a-sampler"), nullptr);
  EXPECT_EQ(CreateSampler(""), nullptr);
}

TEST(SamplerFactoryTest, CheckedFactoryExplainsUnknownName) {
  std::string error;
  auto sampler = CreateSamplerChecked("nonsense-lda", &error);
  EXPECT_EQ(sampler, nullptr);
  EXPECT_NE(error.find("nonsense-lda"), std::string::npos) << error;
  // The message must enumerate every accepted name.
  for (const std::string& name : SamplerNames()) {
    EXPECT_NE(error.find(name), std::string::npos) << name << " / " << error;
  }
}

TEST(SamplerFactoryTest, CheckedFactoryToleratesNullError) {
  EXPECT_EQ(CreateSamplerChecked("nonsense-lda", nullptr), nullptr);
  EXPECT_NE(CreateSamplerChecked("warplda", nullptr), nullptr);
}

TEST(SamplerFactoryTest, CheckedFactoryLeavesErrorAloneOnSuccess) {
  std::string error = "untouched";
  auto sampler = CreateSamplerChecked("warplda", &error);
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(error, "untouched");
}

TEST(SamplerFactoryTest, FldaAliasResolvesToFPlusLda) {
  auto sampler = CreateSampler("flda");
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(sampler->name(), "F+LDA");
  // The alias is not a separate registry entry.
  auto names = SamplerNames();
  EXPECT_EQ(std::count(names.begin(), names.end(), "flda"), 0);
}

}  // namespace
}  // namespace warplda

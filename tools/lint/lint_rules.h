// Rule-pass entry points. Each pass appends Findings with a short rule id
// (the driver prefixes "warplint-"); suppression and reporting are the
// driver's job.

#ifndef WARPLINT_LINT_RULES_H_
#define WARPLINT_LINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_model.h"

namespace warplint {

// ---------------------------------------------------- token rules (PR 7/8) ---

struct IncludeEdge {
  std::string from_rel;  // including file, repo-relative
  size_t line;
  std::string target;    // include path as written, e.g. "core/warp_lda.h"
};

void CheckDeterminism(const SourceFile& f, std::vector<Finding>* out);
void CheckUnorderedIter(const SourceFile& f, std::vector<Finding>* out);
void CheckHotpathSync(const SourceFile& f, std::vector<Finding>* out);
void CheckScalarRef(const SourceFile& f, std::vector<Finding>* out);
void CheckNakedNew(const SourceFile& f, std::vector<Finding>* out);
void CheckMemcpyNontrivial(const SourceFile& f, std::vector<Finding>* out);
void CollectAlignedTypes(const SourceFile& f, std::set<std::string>* types);
void CheckAlignasPad(const SourceFile& f,
                     const std::set<std::string>& aligned_types,
                     std::vector<Finding>* out);
void CheckNolintHygiene(const SourceFile& f, std::vector<Finding>* out);
void CollectIncludes(const SourceFile& f, std::vector<IncludeEdge>* edges);
void CheckLayering(const std::vector<IncludeEdge>& edges,
                   const std::set<std::string>& repo_headers,
                   std::vector<Finding>* out);

// ----------------------------------------- concurrency contracts (family 1) ---

// The per-class member model fed by src/util/contracts.h annotations.
struct ContractModel {
  std::vector<ClassDef> classes;                 // every class in the repo
  std::map<std::string, size_t> by_name;         // unqualified name -> index
};

ContractModel BuildContractModel(const std::vector<SourceFile>& files);

// Flags (a) writes to WARP_BARRIER_ONLY members from concurrent grid bodies
// (RunBlock / Run*Part / Accept* / Draw* / RunTasks), (b) accesses to
// WARP_WORKER_LOCAL members in those bodies not indexed by the worker
// argument, (c) mutations of WARP_IMMUTABLE_AFTER members outside their
// declared writer set (constructors always allowed), and (d) members that
// hold a worker-local-annotated type without carrying the annotation
// themselves.
void CheckContracts(const std::vector<SourceFile>& files,
                    const ContractModel& model, std::vector<Finding>* out);

// ---------------------------------------- serialized-schema lock (family 2) ---

struct SchemaOptions {
  std::string lock_path;  // resolved path of tools/lint/schema.lock
  bool write_lock = false;
};

// Extracts the field sequence of every struct reaching a PayloadWriter /
// PayloadReader serializer plus all k*Version constants, and diffs them
// against the committed lock. In write mode regenerates the lock instead —
// refusing (return 2) when a pinned struct drifted without any version
// constant changing, which is what forces the bump. Returns 0 otherwise.
int CheckSchema(const std::vector<SourceFile>& files, const SchemaOptions& opt,
                std::vector<Finding>* out);

// -------------------------------------------- cross-TU hygiene (family 3) ---

// obs metrics registered/fetched but never incremented/observed anywhere in
// src/, and metric-handle fields mutated but never registered.
void CheckObsOrphans(const std::vector<SourceFile>& files,
                     std::vector<Finding>* out);

// Seeded Rng construction inside concurrent grid bodies that does not flow
// from a per-token stream derivation (StreamRng / RngFromState).
void CheckRngStream(const SourceFile& f, std::vector<Finding>* out);

// NOLINT(warplint-*) suppressions whose target line no longer triggers the
// named rule. Must run after every other pass: it reads `findings`.
void CheckStaleNolint(const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings);

}  // namespace warplint

#endif  // WARPLINT_LINT_RULES_H_

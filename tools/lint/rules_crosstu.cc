// Rule family 3: cross-TU hygiene.
//
//   warplint-obs-orphan   metrics fetched from / registered with the obs
//                         registry but never Inc'd / Observed anywhere in
//                         the tree (dead dashboards), and metric-handle
//                         fields mutated without ever being bound to the
//                         registry (null-deref / invisible metric).
//   warplint-rng-stream   seeded Rng construction inside a concurrent grid
//                         body that does not flow from the per-token stream
//                         derivation (StreamRng / RngFromState) — such an
//                         Rng repeats the same sequence for every block and
//                         silently correlates proposals across workers.
//   warplint-stale-nolint suppressions whose target line no longer
//                         triggers the named rule. Runs after every other
//                         pass so it can consult the finding list.

#include <algorithm>

#include "lint_rules.h"

namespace warplint {

namespace {

// ----------------------------------------------------------- obs-orphan ---

struct MetricSite {
  std::string file;
  size_t line = 0;
  std::string metric;  // registry name string, e.g. "dist_frames_sent_total"
  std::string handle;  // variable / member the handle is stored in
};

const char* const kObsCalls[] = {"GetCounter",      "GetGauge",
                                 "GetHistogram",    "RegisterCounter",
                                 "RegisterGauge",   "RegisterHistogram"};

bool IsMutatorName(const std::string& m) {
  return m == "Inc" || m == "Add" || m == "Set" || m == "Observe";
}

// True when `handle` is followed somewhere by `.Mut(` / `->Mut(`.
bool HandleMutated(const std::vector<SourceFile>& files,
                   const std::string& handle) {
  if (handle.empty()) return false;
  for (const SourceFile& f : files) {
    size_t pos = 0, at = 0;
    const std::string& text = f.flat_code;
    while (pos < text.size()) {
      std::string tail = text.substr(pos);
      if (!HasWord(tail, handle, &at)) break;
      size_t j = pos + at + handle.size();
      while (j < text.size() && (text[j] == ' ' || text[j] == '\n')) ++j;
      if (j < text.size() && text[j] == '.') {
        ++j;
      } else if (j + 1 < text.size() && text[j] == '-' && text[j + 1] == '>') {
        j += 2;
      } else {
        pos = pos + at + handle.size();
        continue;
      }
      size_t wb = j;
      while (j < text.size() && IsIdent(text[j])) ++j;
      if (IsMutatorName(text.substr(wb, j - wb)) && j < text.size() &&
          text[j] == '(') {
        return true;
      }
      pos = pos + at + handle.size();
    }
  }
  return false;
}

size_t MatchingClose(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

std::string LastIdent(const std::string& s) {
  size_t end = s.size();
  while (end > 0 && !IsIdent(s[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdent(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

// Collects every registry call site in `f` with its metric name (from the
// raw text — the string literal is blanked in flat_code) and the handle it
// binds. A chained immediate use (`...GetHistogram(...)->Observe(...)`) is
// recorded with an empty handle and counts as used.
void CollectMetricSites(const SourceFile& f, std::vector<MetricSite>* sites,
                        std::set<std::string>* bound,
                        std::set<std::string>* chained_used) {
  const std::string& text = f.flat_code;
  for (const char* call : kObsCalls) {
    const std::string name(call);
    const bool is_register = name.compare(0, 8, "Register") == 0;
    size_t pos = 0, at = 0;
    while (pos < text.size()) {
      std::string tail = text.substr(pos);
      if (!HasWord(tail, name, &at)) break;
      size_t start = pos + at;
      pos = start + name.size();
      // Only object-call sites: `reg.GetCounter(`, `Global().GetHistogram(`.
      // Skips declarations (` GetCounter(`) and definitions (`::GetCounter(`).
      if (start == 0 || (text[start - 1] != '.' && text[start - 1] != '>')) {
        continue;
      }
      size_t open = text.find('(', start + name.size());
      if (open == std::string::npos) continue;
      size_t close = MatchingClose(text, open);
      if (close == std::string::npos) continue;
      // Metric name: first string literal inside the call, from raw text
      // (flat_raw and flat_code share columns).
      size_t quote = f.flat_raw.find('"', open);
      if (quote == std::string::npos || quote > close) continue;
      size_t quote_end = f.flat_raw.find('"', quote + 1);
      if (quote_end == std::string::npos) continue;
      MetricSite site;
      site.file = f.rel;
      site.line = f.line_of[start] + 1;
      site.metric = f.flat_raw.substr(quote + 1, quote_end - quote - 1);
      if (is_register) {
        // Handle = last argument, stripped of '&'.
        std::string args = text.substr(open + 1, close - open - 1);
        size_t cut = std::string::npos;
        int depth = 0;
        for (size_t i = 0; i < args.size(); ++i) {
          if (args[i] == '(' || args[i] == '[' || args[i] == '{') ++depth;
          if (args[i] == ')' || args[i] == ']' || args[i] == '}') --depth;
          if (args[i] == ',' && depth == 0) cut = i;
        }
        if (cut != std::string::npos) {
          site.handle = LastIdent(args.substr(cut + 1));
        }
        if (!site.handle.empty()) bound->insert(site.handle);
      } else {
        // Handle = last identifier of the LHS when this call initialises
        // one. Walk back to the nearest statement boundary; accept only a
        // plain `=` (not ==, <=, !=, ...).
        size_t b = start;
        size_t eq = std::string::npos;
        while (b > 0) {
          char c = text[b - 1];
          // '?' is not a boundary: `h = durable ? reg.Get...` still binds h.
          if (c == ';' || c == '{' || c == '}') break;
          if (c == '=') {
            if (b >= 2 && (text[b - 2] == '=' || text[b - 2] == '!' ||
                           text[b - 2] == '<' || text[b - 2] == '>')) {
              break;
            }
            eq = b - 1;
            break;
          }
          --b;
        }
        if (eq != std::string::npos) {
          size_t lhs_begin = eq;
          while (lhs_begin > 0) {
            char c = text[lhs_begin - 1];
            if (c == ';' || c == '{' || c == '}') break;
            --lhs_begin;
          }
          site.handle = LastIdent(text.substr(lhs_begin, eq - lhs_begin));
          if (!site.handle.empty()) bound->insert(site.handle);
        } else {
          // No assignment: chained immediate use is fine, a bare discarded
          // call is an orphan with no handle to search for.
          size_t j = close + 1;
          while (j < text.size() && (text[j] == ' ' || text[j] == '\n')) ++j;
          if (j + 1 < text.size() && text[j] == '-' && text[j + 1] == '>') {
            chained_used->insert(site.metric);
          }
        }
      }
      sites->push_back(site);
    }
  }
}

// ----------------------------------------------------------- rng-stream ---

bool RngArgsStreamDerived(const std::string& args) {
  return args.find("stream") != std::string::npos ||
         args.find("Stream") != std::string::npos ||
         args.find("state") != std::string::npos ||
         args.find("State") != std::string::npos ||
         args.find("Derive") != std::string::npos;
}

}  // namespace

void CheckObsOrphans(const std::vector<SourceFile>& files,
                     std::vector<Finding>* out) {
  std::vector<MetricSite> sites;
  std::set<std::string> bound;
  std::set<std::string> chained_used;
  for (const SourceFile& f : files) {
    if (StartsWith(f.rel, "src/obs/") || StartsWith(f.rel, "obs/")) continue;
    // Tests and benches fetch metrics to *read* them; only production code
    // is expected to drive every handle it registers.
    if (StartsWith(f.rel, "tests/") || StartsWith(f.rel, "bench/")) continue;
    CollectMetricSites(f, &sites, &bound, &chained_used);
  }
  std::set<std::string> reported;
  for (const MetricSite& s : sites) {
    if (reported.count(s.metric)) continue;
    bool used = s.handle.empty() ? chained_used.count(s.metric) > 0
                                 : HandleMutated(files, s.handle);
    if (used) continue;
    reported.insert(s.metric);
    out->push_back(
        {s.file, s.line, "obs-orphan",
         "metric '" + s.metric + "' is registered here" +
             (s.handle.empty() ? "" : " (handle '" + s.handle + "')") +
             " but never Inc/Add/Set/Observe'd anywhere — either wire up "
             "the instrumentation or drop the registration",
         false});
  }
  // Reverse direction: obs handle fields mutated but never bound.
  for (const SourceFile& f : files) {
    if (StartsWith(f.rel, "src/obs/") || StartsWith(f.rel, "obs/")) continue;
    for (const ClassDef& c : CollectClasses(f)) {
      for (const FieldDecl& fd : c.fields) {
        if (!HasWord(fd.type, "Counter") && !HasWord(fd.type, "Gauge") &&
            !HasWord(fd.type, "Histogram")) {
          continue;
        }
        if (fd.type.find("obs") == std::string::npos) continue;
        if (bound.count(fd.name)) continue;
        if (!HandleMutated(files, fd.name)) continue;
        out->push_back(
            {f.rel, fd.line, "obs-orphan",
             "metric handle '" + fd.name + "' of '" + c.name +
                 "' is mutated but never bound to the registry via "
                 "Get*/Register* — the updates are invisible (or a null "
                 "deref if the handle is a pointer)",
             false});
      }
    }
  }
}

void CheckRngStream(const SourceFile& f, std::vector<Finding>* out) {
  std::vector<BodyRange> bodies = ExtractMethodBodies(f);
  std::vector<BodyRange> frees = ExtractFreeFunctionBodies(f);
  bodies.insert(bodies.end(), frees.begin(), frees.end());
  for (const BodyRange& b : bodies) {
    if (!IsContractHotBody(b.name)) continue;
    for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
         ++ln) {
      const std::string& s = f.code[ln - 1];
      if (s.find(".Seed(") != std::string::npos ||
          s.find("->Seed(") != std::string::npos) {
        out->push_back(
            {f.rel, ln, "rng-stream",
             "re-seeding an Rng inside concurrent body '" + b.name +
                 "' — derive it from the per-token stream "
                 "(WarpLdaSampler::StreamRng / simd::RngFromState) so "
                 "draws stay block-order independent",
             false});
        continue;
      }
      size_t pos = 0, at = 0;
      while (pos < s.size()) {
        std::string tail = s.substr(pos);
        if (!HasWord(tail, "Rng", &at)) break;
        size_t j = pos + at + 3;
        pos = pos + at + 3;
        while (j < s.size() && s[j] == ' ') ++j;
        if (j >= s.size() || s[j] == '&' || s[j] == '*' || s[j] == '>' ||
            s[j] == ')' || s[j] == ',') {
          continue;  // parameter / template / cast position
        }
        std::string check;  // argument text to test for stream derivation
        if (s[j] == '(') {
          size_t close = MatchingClose(s, j);
          check = (close == std::string::npos) ? s.substr(j)
                                               : s.substr(j, close - j);
        } else if (IsIdent(s[j])) {
          size_t name_end = j;
          while (name_end < s.size() && IsIdent(s[name_end])) ++name_end;
          size_t k = name_end;
          while (k < s.size() && s[k] == ' ') ++k;
          if (k < s.size() && s[k] == ';') continue;  // lazy default-construct
          if (k < s.size() && s[k] == '(') {
            size_t close = MatchingClose(s, k);
            check = (close == std::string::npos) ? s.substr(k)
                                                 : s.substr(k, close - k);
          } else if (k < s.size() && s[k] == '=') {
            // `Rng rng = <expr>;` — test the initialiser (joined with the
            // next lines in case it wraps).
            check = s.substr(k + 1);
            for (size_t extra = ln; extra < ln + 2 && extra < f.code.size();
                 ++extra) {
              check += f.code[extra];
            }
          } else {
            continue;
          }
        } else {
          continue;
        }
        if (!RngArgsStreamDerived(check)) {
          out->push_back(
              {f.rel, ln, "rng-stream",
               "seeded Rng constructed inside concurrent body '" + b.name +
                   "' without a per-token stream derivation — use "
                   "WarpLdaSampler::StreamRng(stream_base, tag, token) or "
                   "simd::RngFromState so every token draws from its own "
                   "stream regardless of block schedule",
               false});
        }
      }
    }
  }
}

void CheckStaleNolint(const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings) {
  std::vector<Finding> stale;
  for (const SourceFile& f : files) {
    for (const auto& it : f.nolint) {
      for (const std::string& rule : it.second.rules) {
        if (rule == "nolint" || rule == "stale-nolint" || !IsKnownRule(rule)) {
          continue;  // unknown ids are warplint-nolint's business
        }
        bool fires = false;
        for (const Finding& fd : *findings) {
          if (fd.rule == rule && fd.line == it.first && fd.file == f.rel) {
            fires = true;
            break;
          }
        }
        if (!fires) {
          stale.push_back(
              {f.rel, it.first, "stale-nolint",
               "NOLINT(warplint-" + rule +
                   ") suppresses nothing — the line no longer triggers "
                   "warplint-" + rule + "; remove the stale suppression",
               false});
        }
      }
    }
  }
  findings->insert(findings->end(), stale.begin(), stale.end());
}

}  // namespace warplint

// Rule family 2: serialized-schema lock (warplint-schema).
//
// Every struct whose fields reach a PayloadWriter/PayloadReader serializer
// (checkpoint frames, FrameKind::kDistMessage payloads) has its field
// sequence — name, type tokens, declaration order — pinned in the committed
// tools/lint/schema.lock, together with every `constexpr ... k*Version`
// constant in the repo. Reordering, renaming, retyping, adding or removing
// a field changes byte layout on the wire / on disk; the lock makes that a
// build-breaking event instead of a silent corruption:
//
//   * normal runs diff the extracted schema against the lock and fail on
//     any drift, with a message keyed to whether a version constant moved;
//   * `--write-schema-lock` regenerates the lock, but REFUSES (exit 2) when
//     a previously pinned struct's fields changed while the version map is
//     identical to the committed lock — bump kFrameVersion (or the payload
//     version) first, then regenerate.
//
// Discovery is heuristic but deliberately conservative: a struct C is
// pinned by serializer body F only when (a) F belongs to a different class
// than C (so FrameChannel is not pinned just because FrameChannel::Send
// writes frames of *other* structs), (b) C's name appears as a word in F
// (not as a `C::` qualifier), and (c) at least half of C's fields appear
// as `.field` / `->field` accesses inside the arguments of F's Put* / Get*
// calls — it is the fields flowing through the writer that makes a layout
// wire format. That ratio is what keeps coordinator/worker bookkeeping
// structs (whose names and odd fields drift through message-pump bodies)
// and accessor-serialized classes like TopicModel out of the lock.
// Embedded structs are pinned by closure: when a pinned struct has a field
// whose type names another class (SweepCheckpoint's SweepPlan plan) and
// that class's fields also flow through the same serializer, it is pinned
// too.

#include <algorithm>
#include <fstream>
#include <sstream>

#include "lint_rules.h"

namespace warplint {

namespace {

struct PinnedStruct {
  std::string qualified;
  std::string file;
  size_t line = 0;
  std::vector<std::string> fields;  // "type name" per declaration, in order
};

struct Schema {
  std::map<std::string, std::string> versions;     // kFooVersion -> literal
  std::map<std::string, PinnedStruct> structs;     // qualified -> pin
};

std::string RootClass(const std::string& qualified) {
  size_t p = qualified.find("::");
  return p == std::string::npos ? qualified : qualified.substr(0, p);
}

std::string BodyText(const SourceFile& f, const BodyRange& b) {
  std::string text;
  size_t first = b.head_line ? b.head_line : b.begin_line;
  for (size_t ln = first; ln <= b.end_line && ln <= f.code.size(); ++ln) {
    text += f.code[ln - 1];
    text += '\n';
  }
  return text;
}

// `constexpr uint32_t kFrameVersion = 2;` (any integer type, any k*Version
// name). Value kept as the literal token so hex/char forms round-trip.
void CollectVersionConstants(const SourceFile& f, Schema* schema) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    if (!HasWord(s, "constexpr")) continue;
    size_t pos = 0;
    while (pos < s.size()) {
      if (s[pos] == 'k' && (pos == 0 || !IsIdent(s[pos - 1]))) {
        size_t j = pos;
        while (j < s.size() && IsIdent(s[j])) ++j;
        std::string name = s.substr(pos, j - pos);
        if (name.size() > 8 &&
            name.compare(name.size() - 7, 7, "Version") == 0) {
          size_t eq = s.find('=', j);
          if (eq != std::string::npos) {
            std::string val = Trim(s.substr(eq + 1));
            size_t semi = val.find(';');
            if (semi != std::string::npos) val = Trim(val.substr(0, semi));
            if (!val.empty()) schema->versions[name] = val;
          }
        }
        pos = j;
      } else {
        ++pos;
      }
    }
  }
}

// Concatenated argument text of every call whose name starts with Put or
// Get (Put, PutVec, PutConfig, Get, GetVec, GetConfig, ...). Only what
// flows through these calls counts as "serialized".
std::string PutGetArgs(const std::string& text) {
  std::string args;
  size_t pos = 0;
  while (pos < text.size()) {
    if (IsIdent(text[pos]) && (pos == 0 || !IsIdent(text[pos - 1]))) {
      size_t j = pos;
      while (j < text.size() && IsIdent(text[j])) ++j;
      std::string word = text.substr(pos, j - pos);
      if ((StartsWith(word, "Put") || StartsWith(word, "Get")) &&
          j < text.size() && text[j] == '(') {
        int depth = 0;
        size_t close = j;
        for (; close < text.size(); ++close) {
          if (text[close] == '(') ++depth;
          if (text[close] == ')' && --depth == 0) break;
        }
        if (close < text.size()) {
          args += text.substr(j + 1, close - j - 1);
          args += ' ';
        }
      }
      pos = j;
    } else {
      ++pos;
    }
  }
  return args;
}

// `.name` / `->name` occurrence with a word boundary on the right.
bool FieldFlows(const std::string& args, const std::string& name) {
  size_t pos = 0, at = 0;
  while (pos < args.size()) {
    std::string tail = args.substr(pos);
    if (!HasWord(tail, name, &at)) return false;
    size_t begin = pos + at;
    if (begin > 0 && (args[begin - 1] == '.' || args[begin - 1] == '>')) {
      return true;
    }
    pos = begin + name.size();
  }
  return false;
}

size_t FieldsFlowing(const ClassDef& c, const std::string& args) {
  size_t n = 0;
  for (const FieldDecl& fd : c.fields) {
    if (FieldFlows(args, fd.name)) ++n;
  }
  return n;
}

// C's name as a standalone type word — a `C::` qualifier match does not
// count (EncodeStats(const FrameChannel::Stats&) names Stats, not
// FrameChannel).
bool NamesType(const std::string& text, const std::string& name) {
  size_t pos = 0, at = 0;
  while (pos < text.size()) {
    std::string tail = text.substr(pos);
    if (!HasWord(tail, name, &at)) return false;
    size_t end = pos + at + name.size();
    size_t j = end;
    while (j < text.size() && text[j] == ' ') ++j;
    if (!(j + 1 < text.size() && text[j] == ':' && text[j + 1] == ':')) {
      return true;
    }
    pos = end;
  }
  return false;
}

void Pin(const ClassDef& c, Schema* schema) {
  PinnedStruct& pin = schema->structs[c.qualified];
  if (!pin.fields.empty()) return;  // already pinned this run
  pin.qualified = c.qualified;
  pin.file = c.file;
  pin.line = c.line;
  for (const FieldDecl& fd : c.fields) {
    pin.fields.push_back(fd.type + " " + fd.name);
  }
}

Schema ExtractSchema(const std::vector<SourceFile>& files) {
  Schema schema;
  // All class definitions across the tree, for field lookup.
  std::vector<ClassDef> classes;
  for (const SourceFile& f : files) {
    CollectVersionConstants(f, &schema);
    std::vector<ClassDef> defs = CollectClasses(f);
    classes.insert(classes.end(), defs.begin(), defs.end());
  }
  // Serializer bodies: any function whose text mentions PayloadWriter or
  // PayloadReader (signature or body).
  for (const SourceFile& f : files) {
    std::vector<BodyRange> bodies = ExtractMethodBodies(f);
    std::vector<BodyRange> frees = ExtractFreeFunctionBodies(f);
    bodies.insert(bodies.end(), frees.begin(), frees.end());
    for (const BodyRange& b : bodies) {
      std::string text = BodyText(f, b);
      if (!HasWord(text, "PayloadWriter") && !HasWord(text, "PayloadReader")) {
        continue;
      }
      std::string args = PutGetArgs(text);
      if (args.empty()) continue;
      for (const ClassDef& c : classes) {
        if (c.fields.empty()) continue;
        std::string root = RootClass(c.qualified);
        if (!b.cls.empty() && (b.cls == root || b.cls == c.name)) continue;
        if (!NamesType(text, c.name)) continue;
        size_t flowing = FieldsFlowing(c, args);
        if (flowing == 0 || flowing * 2 < c.fields.size()) continue;
        Pin(c, &schema);
        // Closure over embedded structs: fields of C whose type names
        // another class whose own fields flow through this serializer
        // (SweepCheckpoint.plan -> SweepPlan).
        for (const FieldDecl& fd : c.fields) {
          for (const ClassDef& inner : classes) {
            if (inner.fields.empty() || inner.qualified == c.qualified) {
              continue;
            }
            if (!HasWord(fd.type, inner.name)) continue;
            size_t inner_flow = FieldsFlowing(inner, args);
            if (inner_flow == 0 || inner_flow * 2 < inner.fields.size()) {
              continue;
            }
            Pin(inner, &schema);
          }
        }
      }
    }
  }
  return schema;
}

// Lock file format, one entry per line:
//   version <kName> <literal>
//   struct <Qualified::Name> <file>
//     field <type tokens...> <name>
std::string RenderLock(const Schema& s) {
  std::ostringstream out;
  out << "# warplint schema lock — field order of every serialized struct\n"
      << "# plus all k*Version constants. Regenerate with\n"
      << "#   warplint --root . --write-schema-lock\n"
      << "# after bumping the relevant version constant.\n";
  for (const auto& v : s.versions) {
    out << "version " << v.first << " " << v.second << "\n";
  }
  for (const auto& it : s.structs) {
    const PinnedStruct& p = it.second;
    out << "struct " << p.qualified << " " << p.file << "\n";
    for (const std::string& fld : p.fields) {
      out << "  field " << fld << "\n";
    }
  }
  return out.str();
}

bool ParseLock(const std::string& path, Schema* s) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  PinnedStruct* cur = nullptr;
  while (std::getline(in, line)) {
    std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream ls(t);
    std::string kw;
    ls >> kw;
    if (kw == "version") {
      std::string name, val;
      ls >> name;
      std::getline(ls, val);
      s->versions[name] = Trim(val);
      cur = nullptr;
    } else if (kw == "struct") {
      std::string qual, file;
      ls >> qual >> file;
      cur = &s->structs[qual];
      cur->qualified = qual;
      cur->file = file;
    } else if (kw == "field" && cur) {
      std::string rest;
      std::getline(ls, rest);
      cur->fields.push_back(Trim(rest));
    }
  }
  return true;
}

std::string DescribeFieldDrift(const PinnedStruct& locked,
                               const PinnedStruct& now) {
  if (locked.fields.size() != now.fields.size()) {
    std::ostringstream m;
    m << "field count changed " << locked.fields.size() << " -> "
      << now.fields.size();
    return m.str();
  }
  for (size_t i = 0; i < locked.fields.size(); ++i) {
    if (locked.fields[i] != now.fields[i]) {
      return "field " + std::to_string(i + 1) + " changed '" +
             locked.fields[i] + "' -> '" + now.fields[i] + "'";
    }
  }
  return "";
}

}  // namespace

int CheckSchema(const std::vector<SourceFile>& files, const SchemaOptions& opt,
                std::vector<Finding>* out) {
  Schema now = ExtractSchema(files);
  Schema locked;
  bool have_lock = ParseLock(opt.lock_path, &locked);
  bool versions_moved = have_lock && locked.versions != now.versions;

  if (opt.write_lock) {
    if (have_lock) {
      for (const auto& it : locked.structs) {
        auto cur = now.structs.find(it.first);
        if (cur == now.structs.end()) continue;  // removal is fine to record
        std::string drift = DescribeFieldDrift(it.second, cur->second);
        if (!drift.empty() && !versions_moved) {
          std::fprintf(stderr,
                       "warplint: refusing to rewrite schema lock: '%s' "
                       "drifted (%s) but no k*Version constant changed — "
                       "bump the frame/payload version first, then "
                       "regenerate\n",
                       it.first.c_str(), drift.c_str());
          return 2;
        }
      }
    }
    std::ofstream outf(opt.lock_path);
    if (!outf) {
      std::fprintf(stderr, "warplint: cannot write %s\n",
                   opt.lock_path.c_str());
      return 2;
    }
    outf << RenderLock(now);
    std::fprintf(stderr, "warplint: wrote %s (%zu version constant(s), %zu "
                 "pinned struct(s))\n",
                 opt.lock_path.c_str(), now.versions.size(),
                 now.structs.size());
    return 0;
  }

  if (!have_lock) {
    if (!now.structs.empty()) {
      const PinnedStruct& p = now.structs.begin()->second;
      out->push_back({p.file, p.line, "schema",
                      "serialized structs found but tools/lint/schema.lock "
                      "is missing — run warplint --write-schema-lock and "
                      "commit the lock",
                      false});
    }
    return 0;
  }

  for (const auto& it : locked.structs) {
    auto cur = now.structs.find(it.first);
    if (cur == now.structs.end()) {
      // Struct no longer reaches a serializer (renamed or deleted).
      out->push_back(
          {it.second.file, 1, "schema",
           "serialized struct '" + it.first +
               "' is pinned in schema.lock but no longer found — if the "
               "wire format intentionally changed, bump the version "
               "constant and regenerate the lock",
           false});
      continue;
    }
    std::string drift = DescribeFieldDrift(it.second, cur->second);
    if (drift.empty()) continue;
    if (versions_moved) {
      out->push_back(
          {cur->second.file, cur->second.line, "schema",
           "serialized struct '" + it.first + "' drifted (" + drift +
               ") and a version constant was bumped — regenerate the lock "
               "with warplint --write-schema-lock",
           false});
    } else {
      out->push_back(
          {cur->second.file, cur->second.line, "schema",
           "serialized struct '" + it.first + "' drifted (" + drift +
               ") without a version bump — old checkpoints / peers will "
               "decode garbage; bump kFrameVersion (or the payload "
               "version) and regenerate schema.lock",
           false});
    }
  }
  for (const auto& it : now.structs) {
    if (locked.structs.count(it.first)) continue;
    out->push_back(
        {it.second.file, it.second.line, "schema",
         "struct '" + it.first +
             "' now reaches a serializer but is not pinned in "
             "schema.lock — regenerate the lock with warplint "
             "--write-schema-lock",
         false});
  }
  for (const auto& v : locked.versions) {
    auto cur = now.versions.find(v.first);
    if (cur == now.versions.end()) {
      out->push_back({"tools/lint/schema.lock", 1, "schema",
                      "version constant '" + v.first +
                          "' is pinned in schema.lock but no longer "
                          "defined — regenerate the lock",
                      false});
    }
  }
  if (versions_moved) {
    // Versions moved but every pinned struct matched: the lock is stale.
    bool any_struct_finding = false;
    for (const Finding& fd : *out) {
      if (fd.rule == "schema") { any_struct_finding = true; break; }
    }
    if (!any_struct_finding) {
      out->push_back({"tools/lint/schema.lock", 1, "schema",
                      "version constants changed but schema.lock was not "
                      "regenerated — run warplint --write-schema-lock",
                      false});
    }
  }
  return 0;
}

}  // namespace warplint

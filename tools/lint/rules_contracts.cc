// Rule family 1: machine-checked concurrency contracts (warplint-contract).
//
// src/util/contracts.h defines three no-op annotation macros; this pass
// turns them into checks over the class model:
//
//   WARP_WORKER_LOCAL       on a member: in concurrent grid bodies
//                           (IsContractHotBody) every access must be indexed
//                           by the worker argument (`scratch_[worker]`) or
//                           be a size query. On a struct: every member
//                           anywhere holding that type must itself carry
//                           WARP_WORKER_LOCAL.
//   WARP_BARRIER_ONLY       member may only be written between sweeps /
//                           at stage barriers: any write from a concurrent
//                           grid body is a race by construction.
//   WARP_IMMUTABLE_AFTER(F, ...)  member is frozen after F; only the listed
//                           methods (plus constructors) may write it, in
//                           any body, hot or not. On a struct the contract
//                           applies to every field.
//
// Writes are detected through the owning class's own method bodies (bare
// `member` / `this->member`) and through *known instance paths*: if class D
// declares `GridState grid_;`, then `grid_.stage = ...` inside a D method
// is a write to GridState::stage. Matching by exact instance path is what
// keeps name collisions (GridState::base_word vs SweepCheckpoint::base_word)
// from producing false findings.
//
// Known blind spots, accepted to stay libclang-free: constructor init-lists
// and destructor bodies (inherently single-threaded phases), writes through
// references (`char& ran = grid_.block_ran[i]; ran = 1;`), and in-class
// inline method bodies (repo style keeps definitions in .cc files).

#include <map>

#include "lint_rules.h"

namespace warplint {

namespace {

const char* ContractName(Contract c) {
  switch (c) {
    case Contract::kWorkerLocal: return "WARP_WORKER_LOCAL";
    case Contract::kBarrierOnly: return "WARP_BARRIER_ONLY";
    case Contract::kImmutableAfter: return "WARP_IMMUTABLE_AFTER";
    default: return "";
  }
}

bool TypeMentions(const std::string& type, const std::string& cls) {
  return HasWord(type, cls);
}

// One annotated member reachable from bodies of `ctx` class methods via
// `prefix.member` (prefix empty = the member's own class).
struct Enforcement {
  std::string prefix;  // instance path head, e.g. "grid_"; may be empty
  const ClassDef* cls = nullptr;
  const FieldDecl* field = nullptr;
};

bool ListedWriter(const std::string& body, const std::vector<std::string>& w) {
  for (const std::string& m : w) {
    if (m == body) return true;
  }
  return false;
}

// Whether a hot-body access at [begin,end) of a WORKER_LOCAL member is
// worker-indexed or a size query.
bool IsWorkerScopedAccess(const std::string& s, size_t end) {
  size_t j = end;
  while (j < s.size() && s[j] == ' ') ++j;
  if (j < s.size() && s[j] == '[') {
    size_t close = j;
    int d = 0;
    for (; close < s.size(); ++close) {
      if (s[close] == '[') ++d;
      if (s[close] == ']' && --d == 0) break;
    }
    if (close >= s.size()) return false;  // spans lines; be conservative
    std::string index = s.substr(j + 1, close - j - 1);
    return HasWord(index, "worker") || HasWord(index, "worker_id") ||
           HasWord(index, "tid");
  }
  if (j < s.size() && (s[j] == '.' || (s[j] == '-' && j + 1 < s.size() &&
                                       s[j + 1] == '>'))) {
    j += (s[j] == '.') ? 1 : 2;
    size_t wb = j;
    while (j < s.size() && IsIdent(s[j])) ++j;
    std::string m = s.substr(wb, j - wb);
    return m == "size" || m == "empty" || m == "capacity";
  }
  return false;
}

}  // namespace

ContractModel BuildContractModel(const std::vector<SourceFile>& files) {
  ContractModel model;
  for (const SourceFile& f : files) {
    // Fixture trees mirror src/; only model real source-shaped files.
    std::vector<ClassDef> defs = CollectClasses(f);
    for (ClassDef& d : defs) {
      if (model.by_name.count(d.name) == 0) {
        model.by_name[d.name] = model.classes.size();
      }
      model.classes.push_back(std::move(d));
    }
  }
  return model;
}

void CheckContracts(const std::vector<SourceFile>& files,
                    const ContractModel& model, std::vector<Finding>* out) {
  // (d) members holding a worker-local type must be annotated themselves.
  for (const ClassDef& wl : model.classes) {
    if (wl.contract != Contract::kWorkerLocal) continue;
    for (const ClassDef& d : model.classes) {
      if (d.name == wl.name) continue;
      for (const FieldDecl& fd : d.fields) {
        if (TypeMentions(fd.type, wl.name) &&
            fd.contract != Contract::kWorkerLocal) {
          out->push_back(
              {d.file, fd.line, "contract",
               "member '" + fd.name + "' holds worker-local type '" +
                   wl.name +
                   "' but is not annotated WARP_WORKER_LOCAL — per-worker "
                   "state must be declared so hot-body indexing is checked",
               false});
        }
      }
    }
  }

  // Enforcement map: context class -> annotated members reachable from it.
  std::map<std::string, std::vector<Enforcement>> by_ctx;
  for (const ClassDef& c : model.classes) {
    bool any = false;
    for (const FieldDecl& fd : c.fields) {
      if (fd.contract != Contract::kNone) any = true;
    }
    if (!any) continue;
    for (const FieldDecl& fd : c.fields) {
      if (fd.contract == Contract::kNone) continue;
      by_ctx[c.name].push_back({"", &c, &fd});
    }
    // Instance paths: D declares a member whose type names C.
    for (const ClassDef& d : model.classes) {
      if (d.name == c.name) continue;
      for (const FieldDecl& inst : d.fields) {
        if (!TypeMentions(inst.type, c.name)) continue;
        for (const FieldDecl& fd : c.fields) {
          if (fd.contract == Contract::kNone) continue;
          by_ctx[d.name].push_back({inst.name, &c, &fd});
        }
      }
    }
  }
  if (by_ctx.empty()) return;

  for (const SourceFile& f : files) {
    std::vector<BodyRange> bodies = ExtractMethodBodies(f);
    for (const BodyRange& b : bodies) {
      auto it = by_ctx.find(b.cls);
      if (it == by_ctx.end()) continue;
      const bool hot = IsContractHotBody(b.name);
      for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
           ++ln) {
        const std::string& s = f.code[ln - 1];
        for (const Enforcement& e : it->second) {
          // Locate occurrences of the member on this line.
          size_t pos = 0;
          while (pos < s.size()) {
            size_t at = 0;
            std::string tail = s.substr(pos);
            size_t begin, end;
            if (e.prefix.empty()) {
              if (!HasWord(tail, e.field->name, &at)) break;
              begin = pos + at;
              end = begin + e.field->name.size();
            } else {
              if (!HasWord(tail, e.prefix, &at)) break;
              size_t j = pos + at + e.prefix.size();
              // Expect `.member` or `->member` right after the prefix.
              if (j < s.size() && s[j] == '.') {
                ++j;
              } else if (j + 1 < s.size() && s[j] == '-' && s[j + 1] == '>') {
                j += 2;
              } else {
                pos = pos + at + e.prefix.size();
                continue;
              }
              size_t wb = j;
              while (j < s.size() && IsIdent(s[j])) ++j;
              if (s.compare(wb, j - wb, e.field->name) != 0) {
                pos = pos + at + e.prefix.size();
                continue;
              }
              begin = wb;
              end = j;
            }
            const std::string shown =
                e.prefix.empty() ? e.field->name
                                 : e.prefix + "." + e.field->name;
            if (e.field->contract == Contract::kWorkerLocal && hot &&
                !IsWorkerScopedAccess(s, end)) {
              out->push_back(
                  {f.rel, ln, "contract",
                   "access to WARP_WORKER_LOCAL '" + shown +
                       "' in concurrent body '" + b.name +
                       "' is not indexed by the worker argument — "
                       "cross-worker scratch access races at stage "
                       "boundaries",
                   false});
            }
            if (IsWriteAccess(s, begin, end)) {
              if (e.field->contract == Contract::kBarrierOnly && hot) {
                out->push_back(
                    {f.rel, ln, "contract",
                     "write to WARP_BARRIER_ONLY '" + shown +
                         "' inside concurrent body '" + b.name +
                         "' — shared state may only be mutated at stage "
                         "barriers (stage the write in ThreadScratch and "
                         "apply it in EndStage/ApplyStagedMoves)",
                     false});
              }
              if (e.field->contract == Contract::kImmutableAfter &&
                  b.name != b.cls &&
                  !ListedWriter(b.name, e.field->writers)) {
                std::string allowed;
                for (const std::string& w : e.field->writers) {
                  if (!allowed.empty()) allowed += ", ";
                  allowed += w;
                }
                out->push_back(
                    {f.rel, ln, "contract",
                     "write to " + std::string(ContractName(
                                       Contract::kImmutableAfter)) +
                         " '" + shown + "' in '" + b.name +
                         "' — only {" + allowed +
                         "} (and constructors) may mutate it",
                     false});
              }
            }
            pos = end;
          }
        }
      }
    }
  }
}

}  // namespace warplint

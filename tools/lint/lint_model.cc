#include "lint_model.h"

#include <cctype>
#include <sstream>

namespace warplint {

const char* const kRuleIds[] = {
    "determinism",   "unordered-iter",    "hotpath-sync", "layering",
    "naked-new",     "memcpy-nontrivial", "alignas-pad",  "nolint",
    "scalar-ref",    "contract",          "schema",       "obs-orphan",
    "rng-stream",    "stale-nolint",
};
const size_t kNumRuleIds = sizeof(kRuleIds) / sizeof(kRuleIds[0]);

bool IsKnownRule(const std::string& id) {
  for (size_t i = 0; i < kNumRuleIds; ++i) {
    if (id == kRuleIds[i]) return true;
  }
  return false;
}

// ------------------------------------------------------------- scrubbing ---

std::vector<std::string> Scrub(const std::vector<std::string>& raw) {
  std::vector<std::string> out(raw.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (size_t ln = 0; ln < raw.size(); ++ln) {
    const std::string& s = raw[ln];
    std::string o(s.size(), ' ');
    if (st == St::kLineComment) st = St::kCode;  // ends at newline
    for (size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      char n = i + 1 < s.size() ? s[i + 1] : '\0';
      switch (st) {
        case St::kCode:
          if (c == '/' && n == '/') {
            st = St::kLineComment;
          } else if (c == '/' && n == '*') {
            st = St::kBlockComment;
            ++i;
          } else if (c == '"') {
            o[i] = '"';
            st = St::kString;
          } else if (c == '\'') {
            o[i] = '\'';
            st = St::kChar;
          } else {
            o[i] = c;
          }
          break;
        case St::kLineComment:
          break;  // blank to end of line
        case St::kBlockComment:
          if (c == '*' && n == '/') {
            st = St::kCode;
            ++i;
          }
          break;
        case St::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            o[i] = '"';
            st = St::kCode;
          }
          break;
        case St::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            o[i] = '\'';
            st = St::kCode;
          }
          break;
      }
    }
    out[ln] = std::move(o);
  }
  return out;
}

void ParseNolint(SourceFile* f) {
  for (size_t ln = 0; ln < f->raw.size(); ++ln) {
    const std::string& s = f->raw[ln];
    size_t pos = s.find("NOLINT(");
    if (pos == std::string::npos) continue;
    size_t open = pos + 6;  // index of '('
    size_t close = s.find(')', open);
    if (close == std::string::npos) continue;
    Suppression sup;
    std::string inside = s.substr(open + 1, close - open - 1);
    std::stringstream ss(inside);
    std::string id;
    while (std::getline(ss, id, ',')) {
      // trim
      while (!id.empty() && std::isspace(static_cast<unsigned char>(id.front())))
        id.erase(id.begin());
      while (!id.empty() && std::isspace(static_cast<unsigned char>(id.back())))
        id.pop_back();
      const std::string prefix = "warplint-";
      if (id.rfind(prefix, 0) == 0) sup.rules.insert(id.substr(prefix.size()));
    }
    if (sup.rules.empty()) continue;  // someone else's NOLINT (clang-tidy)
    // Justification: a ':' right after the ')' with non-empty text.
    size_t j = close + 1;
    if (j < s.size() && s[j] == ':') {
      ++j;
      while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j]))) ++j;
      sup.justified = j < s.size();
    }
    f->nolint[ln + 1] = std::move(sup);
  }
}

void Flatten(SourceFile* f) {
  f->flat_raw.clear();
  f->flat_code.clear();
  f->line_of.clear();
  for (size_t ln = 0; ln < f->code.size(); ++ln) {
    for (size_t i = 0; i < f->code[ln].size(); ++i) {
      f->flat_code.push_back(f->code[ln][i]);
      f->flat_raw.push_back(i < f->raw[ln].size() ? f->raw[ln][i] : ' ');
      f->line_of.push_back(ln);
    }
    f->flat_code.push_back('\n');
    f->flat_raw.push_back('\n');
    f->line_of.push_back(ln);
  }
}

// --------------------------------------------------------- small helpers ---

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool HasWord(const std::string& text, const std::string& word, size_t* at) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    bool l = pos == 0 || !IsIdent(text[pos - 1]);
    size_t end = pos + word.size();
    bool r = end >= text.size() || !IsIdent(text[end]);
    if (l && r) {
      if (at != nullptr) *at = pos;
      return true;
    }
    pos += word.size();
  }
  return false;
}

std::string Trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.erase(s.begin());
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.pop_back();
  return s;
}

bool StartsWith(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

std::string LayerOf(const std::string& rel) {
  if (!StartsWith(rel, "src/")) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------- body mapping ---

std::vector<BodyRange> ExtractMethodBodies(const SourceFile& f) {
  std::vector<BodyRange> bodies;
  const std::string& text = f.flat_code;
  const std::vector<size_t>& line_of = f.line_of;
  size_t i = 0;
  while ((i = text.find("::", i)) != std::string::npos) {
    size_t name_start = i + 2;
    size_t j = name_start;
    while (j < text.size() && IsIdent(text[j])) ++j;
    if (j == name_start) {
      i += 2;
      continue;
    }
    std::string name = text.substr(name_start, j - name_start);
    // Qualifier before the '::' — the (innermost) class name.
    size_t cb = i;
    while (cb > 0 && IsIdent(text[cb - 1])) --cb;
    std::string cls = text.substr(cb, i - cb);
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j >= text.size() || text[j] != '(') {
      i = j;
      continue;
    }
    // Skip the parameter list.
    int pdepth = 0;
    for (; j < text.size(); ++j) {
      if (text[j] == '(') ++pdepth;
      if (text[j] == ')' && --pdepth == 0) {
        ++j;
        break;
      }
    }
    // Find the body '{', skipping const/noexcept/override and a
    // constructor init list (member brace-inits are preceded by an
    // identifier or '>'; the body brace is not).
    bool in_init_list = false;
    char prev_nonspace = ')';
    size_t body_open = std::string::npos;
    for (; j < text.size(); ++j) {
      char c = text[j];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == ';') break;  // declaration, no body
      if (c == ':' && j + 1 < text.size() && text[j + 1] != ':') {
        in_init_list = true;
        prev_nonspace = c;
        continue;
      }
      if (c == '(') {  // init-list member parens: skip to match
        int d = 0;
        for (; j < text.size(); ++j) {
          if (text[j] == '(') ++d;
          if (text[j] == ')' && --d == 0) break;
        }
        prev_nonspace = ')';
        continue;
      }
      if (c == '{') {
        if (in_init_list && (IsIdent(prev_nonspace) || prev_nonspace == '>')) {
          int d = 0;  // member brace-init: skip to match
          for (; j < text.size(); ++j) {
            if (text[j] == '{') ++d;
            if (text[j] == '}' && --d == 0) break;
          }
          prev_nonspace = '}';
          continue;
        }
        body_open = j;
        break;
      }
      prev_nonspace = c;
    }
    if (body_open == std::string::npos) {
      i = j;
      continue;
    }
    int d = 0;
    size_t k = body_open;
    for (; k < text.size(); ++k) {
      if (text[k] == '{') ++d;
      if (text[k] == '}' && --d == 0) break;
    }
    if (k < text.size()) {
      bodies.push_back({cls, name, line_of[name_start] + 1,
                        line_of[body_open] + 1, line_of[k] + 1});
      i = k;
    } else {
      i = body_open + 1;
    }
  }
  return bodies;
}

std::vector<BodyRange> ExtractFreeFunctionBodies(const SourceFile& f) {
  static const std::set<std::string> kNotFunctions = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "new",    "delete", "alignof",  "defined",
  };
  std::vector<BodyRange> bodies;
  const std::string& text = f.flat_code;
  const std::vector<size_t>& line_of = f.line_of;
  size_t i = 0;
  while (i < text.size()) {
    if (!IsIdent(text[i])) {
      ++i;
      continue;
    }
    size_t name_start = i;
    while (i < text.size() && IsIdent(text[i])) ++i;
    std::string name = text.substr(name_start, i - name_start);
    // Method definitions (Name::Method) are ExtractMethodBodies' job.
    bool qualified = name_start >= 2 && text[name_start - 1] == ':' &&
                     text[name_start - 2] == ':';
    size_t j = i;
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j >= text.size() || text[j] != '(' || qualified ||
        kNotFunctions.count(name) > 0) {
      continue;
    }
    int pdepth = 0;
    for (; j < text.size(); ++j) {
      if (text[j] == '(') ++pdepth;
      if (text[j] == ')' && --pdepth == 0) {
        ++j;
        break;
      }
    }
    // A definition continues with `{`, possibly after const/noexcept/
    // override; declarations and calls continue with `;`, `,`, `)`, and an
    // attribute's `((...))` is followed by the real declaration — any other
    // identifier here means this paren group was not a parameter list.
    size_t body_open = std::string::npos;
    for (; j < text.size(); ++j) {
      char c = text[j];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == '{') body_open = j;
      if (c != '{' && IsIdent(c)) {
        size_t w = j;
        while (w < text.size() && IsIdent(text[w])) ++w;
        const std::string word = text.substr(j, w - j);
        if (word != "const" && word != "noexcept" && word != "override" &&
            word != "final")
          break;
        j = w - 1;
        continue;
      }
      break;
    }
    if (body_open == std::string::npos) {
      i = j;
      continue;
    }
    int d = 0;
    size_t k = body_open;
    for (; k < text.size(); ++k) {
      if (text[k] == '{') ++d;
      if (text[k] == '}' && --d == 0) break;
    }
    if (k < text.size()) {
      bodies.push_back({"", name, line_of[name_start] + 1,
                        line_of[body_open] + 1, line_of[k] + 1});
      i = k + 1;
    } else {
      i = body_open + 1;
    }
  }
  return bodies;
}

bool IsHotFunction(const std::string& name) {
  if (name.find("Block") != std::string::npos) return true;
  // Fused span parts, the batched accept kernel and its helpers run inside
  // RunBlock on every token; the Derive/ComputeAccept kernels are the SIMD
  // inner loops themselves.
  if (name.find("Part") != std::string::npos) return true;
  if (name.find("Segment") != std::string::npos) return true;
  if (StartsWith(name, "Derive") || StartsWith(name, "ComputeAccept"))
    return true;
  if (name == "Iterate" || name == "WordPhase" || name == "DocPhase" ||
      name == "AcceptChain")
    return true;
  if (StartsWith(name, "Draw") || StartsWith(name, "Sample")) return true;
  return false;
}

bool IsContractHotBody(const std::string& name) {
  if (name == "RunBlock" || name == "RunBlockCaptured" || name == "RunTasks")
    return true;
  if (StartsWith(name, "Run") && name.size() >= 4 &&
      name.compare(name.size() - 4, 4, "Part") == 0)
    return true;
  if (name == "AcceptSegment" || name == "AcceptChain") return true;
  return StartsWith(name, "Draw") || StartsWith(name, "Derive") ||
         StartsWith(name, "ComputeAccept");
}

// ------------------------------------------------------------ class model ---

namespace {

// Skips a balanced (...) group; `*i` must point at or before the '('.
// Returns the args split at depth-1 commas.
std::vector<std::string> ParseParenArgs(const std::string& text, size_t* i) {
  std::vector<std::string> args;
  size_t j = *i;
  while (j < text.size() && text[j] != '(') {
    if (!std::isspace(static_cast<unsigned char>(text[j]))) return args;
    ++j;
  }
  if (j >= text.size()) return args;
  int depth = 0;
  std::string cur;
  for (; j < text.size(); ++j) {
    char c = text[j];
    if (c == '(') {
      if (++depth == 1) continue;
    }
    if (c == ')') {
      if (--depth == 0) {
        ++j;
        break;
      }
    }
    if (c == ',' && depth == 1) {
      args.push_back(Trim(cur));
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  std::string last = Trim(cur);
  if (!last.empty()) args.push_back(last);
  *i = j;
  return args;
}

std::string CollapseSpaces(const std::string& s) {
  std::string out;
  bool prev_space = false;
  for (char c : s) {
    bool sp = std::isspace(static_cast<unsigned char>(c));
    if (sp && prev_space) continue;
    out.push_back(sp ? ' ' : c);
    prev_space = sp;
  }
  return Trim(out);
}

// Removes template argument groups `<...>` whose '<' directly follows an
// identifier character (so comparisons in initializers survive).
std::string StripTemplateArgs(const std::string& s) {
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '<' && !out.empty() && IsIdent(out.back())) {
      int depth = 0;
      for (; i < s.size(); ++i) {
        if (s[i] == '<') ++depth;
        if (s[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      continue;
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

// Leading annotation macros on a member statement. Returns chars consumed.
size_t ParseMemberAnnotations(const std::string& stmt, Contract* contract,
                              std::vector<std::string>* writers) {
  size_t i = 0;
  while (true) {
    while (i < stmt.size() &&
           std::isspace(static_cast<unsigned char>(stmt[i])))
      ++i;
    size_t b = i;
    while (i < stmt.size() && IsIdent(stmt[i])) ++i;
    std::string w = stmt.substr(b, i - b);
    if (w == "WARP_WORKER_LOCAL") {
      *contract = Contract::kWorkerLocal;
      continue;
    }
    if (w == "WARP_BARRIER_ONLY") {
      *contract = Contract::kBarrierOnly;
      continue;
    }
    if (w == "WARP_IMMUTABLE_AFTER") {
      *contract = Contract::kImmutableAfter;
      *writers = ParseParenArgs(stmt, &i);
      continue;
    }
    return b;
  }
}

const char* const kSkipLeaders[] = {
    "using", "typedef", "friend", "static_assert", "template", "enum",
    "struct", "class", "static", "constexpr", "inline", "extern", "return",
};

void ParseFieldStatement(const std::string& raw_stmt, size_t line,
                         ClassDef* def) {
  std::string stmt = CollapseSpaces(raw_stmt);
  // Strip access labels that got glued onto the statement front.
  for (bool again = true; again;) {
    again = false;
    for (const char* label : {"public", "private", "protected"}) {
      std::string l = std::string(label) + ":";
      if (StartsWith(stmt, l)) {
        stmt = Trim(stmt.substr(l.size()));
        again = true;
      }
    }
  }
  Contract contract = Contract::kNone;
  std::vector<std::string> writers;
  size_t ann = ParseMemberAnnotations(stmt, &contract, &writers);
  stmt = Trim(stmt.substr(ann));
  if (stmt.empty()) return;
  for (const char* kw : kSkipLeaders) {
    if (HasWord(stmt.substr(0, stmt.find(' ')), kw)) return;
  }
  if (stmt.find("operator") != std::string::npos) return;
  std::string stripped = StripTemplateArgs(stmt);
  size_t eq = stripped.find('=');
  size_t paren = stripped.find('(');
  if (paren != std::string::npos && (eq == std::string::npos || paren < eq))
    return;  // function declaration
  std::string head = Trim(eq == std::string::npos ? stripped
                                                  : stripped.substr(0, eq));
  if (head.empty()) return;
  // Peel trailing array extents: `int wake_pipe_[2]` -> name wake_pipe_.
  std::string array_suffix;
  while (!head.empty() && head.back() == ']') {
    size_t open = head.rfind('[');
    if (open == std::string::npos) return;
    array_suffix = head.substr(open) + array_suffix;
    head = Trim(head.substr(0, open));
  }
  // Name = last identifier token of the head; need at least a type before.
  size_t name_end = head.size();
  while (name_end > 0 &&
         std::isspace(static_cast<unsigned char>(head[name_end - 1])))
    --name_end;
  size_t name_begin = name_end;
  while (name_begin > 0 && IsIdent(head[name_begin - 1])) --name_begin;
  if (name_begin == name_end) return;
  std::string name = head.substr(name_begin, name_end - name_begin);
  std::string type_part = Trim(head.substr(0, name_begin));
  if (type_part.empty()) return;  // a lone identifier is not a declaration
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return;
  // Recover the full (un-stripped) type text from the original statement.
  std::string type;
  size_t at = 0;
  std::string collapsed = stmt;
  if (HasWord(collapsed, name, &at)) {
    type = Trim(collapsed.substr(0, at));
  } else {
    type = type_part;
  }
  if (type.empty()) return;
  type += array_suffix;
  FieldDecl fd;
  fd.type = type;
  fd.name = name;
  fd.line = line;
  fd.contract = contract;
  fd.writers = writers;
  def->fields.push_back(std::move(fd));
}

}  // namespace

std::vector<ClassDef> CollectClasses(const SourceFile& f) {
  const std::string& text = f.flat_code;
  struct Open {
    ClassDef def;
    size_t open_off = 0;
    int open_depth = 0;
  };
  struct Span {
    ClassDef def;
    size_t open = 0;
    size_t close = 0;
  };
  std::vector<Span> spans;
  std::vector<Open> stack;
  bool pending = false;
  ClassDef pend;
  std::string last_word;
  size_t i = 0;
  int depth = 0;
  while (i < text.size()) {
    char c = text[i];
    if (IsIdent(c)) {
      size_t b = i;
      while (i < text.size() && IsIdent(text[i])) ++i;
      std::string word = text.substr(b, i - b);
      if ((word == "struct" || word == "class") && last_word != "enum") {
        ClassDef def;
        while (true) {
          while (i < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
          if (i >= text.size() || !IsIdent(text[i])) break;
          size_t wb = i;
          while (i < text.size() && IsIdent(text[i])) ++i;
          std::string w = text.substr(wb, i - wb);
          if (w == "WARP_WORKER_LOCAL") {
            def.contract = Contract::kWorkerLocal;
            continue;
          }
          if (w == "WARP_BARRIER_ONLY") {
            def.contract = Contract::kBarrierOnly;
            continue;
          }
          if (w == "WARP_IMMUTABLE_AFTER") {
            def.contract = Contract::kImmutableAfter;
            def.writers = ParseParenArgs(text, &i);
            continue;
          }
          if (w == "alignas") {
            ParseParenArgs(text, &i);
            continue;
          }
          def.name = w;
          def.line = f.line_of[wb] + 1;
          break;
        }
        if (!def.name.empty()) {
          def.file = f.rel;
          pend = def;
          pending = true;
        }
        last_word = word;
        continue;
      }
      last_word = word;
      continue;
    }
    if (c == ';') {
      pending = false;  // forward declaration
    } else if (c == '{') {
      if (pending) {
        Open o;
        o.def = pend;
        std::string q;
        for (const Open& e : stack) q += e.def.name + "::";
        o.def.qualified = q + o.def.name;
        o.open_off = i;
        o.open_depth = depth;
        stack.push_back(std::move(o));
        pending = false;
      }
      ++depth;
    } else if (c == '}') {
      --depth;
      if (!stack.empty() && stack.back().open_depth == depth) {
        Span sp;
        sp.def = std::move(stack.back().def);
        sp.open = stack.back().open_off;
        sp.close = i;
        spans.push_back(std::move(sp));
        stack.pop_back();
      }
    }
    ++i;
  }
  // Phase 2: direct field declarations for each span.
  std::vector<ClassDef> out;
  for (Span& sp : spans) {
    size_t p = sp.open + 1;
    std::string stmt;
    size_t stmt_line = 0;
    bool has_stmt = false;
    while (p < sp.close) {
      char c = text[p];
      if (c == '{') {
        int g = 0;
        for (; p < sp.close; ++p) {
          if (text[p] == '{') ++g;
          if (text[p] == '}' && --g == 0) {
            ++p;
            break;
          }
        }
        // A brace group at member scope is a nested definition or method
        // body unless it is an `= {...}` initializer.
        if (stmt.find('=') == std::string::npos) {
          stmt.clear();
          has_stmt = false;
        }
        continue;
      }
      if (c == ';') {
        if (has_stmt) ParseFieldStatement(stmt, stmt_line, &sp.def);
        stmt.clear();
        has_stmt = false;
        ++p;
        continue;
      }
      if (!has_stmt && !std::isspace(static_cast<unsigned char>(c))) {
        has_stmt = true;
        stmt_line = f.line_of[p] + 1;
      }
      stmt.push_back(c == '\n' ? ' ' : c);
      ++p;
    }
    // Class-level contracts apply to every member without its own.
    if (sp.def.contract != Contract::kNone) {
      for (FieldDecl& fd : sp.def.fields) {
        if (fd.contract == Contract::kNone &&
            sp.def.contract != Contract::kWorkerLocal) {
          fd.contract = sp.def.contract;
          fd.writers = sp.def.writers;
        }
      }
    }
    out.push_back(std::move(sp.def));
  }
  return out;
}

bool IsWriteAccess(const std::string& line, size_t begin, size_t end) {
  static const std::set<std::string> kMutatingCalls = {
      "push_back", "emplace_back", "pop_back", "clear",  "resize",
      "reserve",   "assign",       "insert",   "erase",  "swap",
      "fill",      "emplace",      "shrink_to_fit",      "store",
      "reset",
  };
  // Prefix ++/--.
  size_t b = begin;
  while (b > 0 && line[b - 1] == ' ') --b;
  if (b >= 2 && ((line[b - 1] == '+' && line[b - 2] == '+') ||
                 (line[b - 1] == '-' && line[b - 2] == '-'))) {
    return true;
  }
  size_t j = end;
  const size_t n = line.size();
  for (int hops = 0; hops < 4; ++hops) {
    // Skip subscript groups.
    while (true) {
      while (j < n && line[j] == ' ') ++j;
      if (j < n && line[j] == '[') {
        int d = 0;
        for (; j < n; ++j) {
          if (line[j] == '[') ++d;
          if (line[j] == ']' && --d == 0) {
            ++j;
            break;
          }
        }
        if (d != 0) return false;  // subscript spans lines; give up
        continue;
      }
      break;
    }
    if (j >= n) return false;
    char c = line[j];
    if (c == '=') return j + 1 >= n || line[j + 1] != '=';
    if ((c == '+' || c == '-') && j + 1 < n && line[j + 1] == c) return true;
    if (std::string("+-*/%&|^").find(c) != std::string::npos && j + 1 < n &&
        line[j + 1] == '=') {
      return true;
    }
    if ((c == '<' || c == '>') && j + 2 < n && line[j + 1] == c &&
        line[j + 2] == '=') {
      return true;
    }
    if (c == '.' || (c == '-' && j + 1 < n && line[j + 1] == '>')) {
      j += (c == '.') ? 1 : 2;
      while (j < n && line[j] == ' ') ++j;
      size_t wb = j;
      while (j < n && IsIdent(line[j])) ++j;
      std::string m = line.substr(wb, j - wb);
      if (m.empty()) return false;
      size_t k = j;
      while (k < n && line[k] == ' ') ++k;
      if (k < n && line[k] == '(') {
        return kMutatingCalls.count(m) > 0;
      }
      continue;  // dotted field: an assignment further right still mutates
    }
    return false;
  }
  return false;
}

}  // namespace warplint

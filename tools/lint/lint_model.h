// Shared lexer / symbol model for warplint's rule passes.
//
// warplint is deliberately libclang-free: every pass works on a scrubbed
// token/line view of the sources (comments and literal bodies blanked,
// columns preserved). This header is the one place that view is defined:
//
//   SourceFile      a file plus its scrubbed twin and NOLINT map
//   BodyRange       a function/method body located by brace matching
//   ClassDef        a struct/class with its ordered field declarations and
//                   any WARP_* concurrency-contract annotations
//
// The per-rule-family passes (rules_core.cc, rules_contracts.cc,
// rules_schema.cc, rules_crosstu.cc) consume this model; the driver
// (warplint.cc) owns gathering, suppression, and reporting.

#ifndef WARPLINT_LINT_MODEL_H_
#define WARPLINT_LINT_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace warplint {

// ----------------------------------------------------------------- model ---

struct Finding {
  std::string file;  // path relative to --root
  size_t line = 0;   // 1-based
  std::string rule;  // short id, e.g. "determinism"
  std::string message;
  bool suppressed = false;
};

struct Suppression {
  std::set<std::string> rules;  // short ids named in NOLINT(...)
  bool justified = false;
};

struct SourceFile {
  std::string rel;                // e.g. "src/core/warp_lda.cc"
  std::vector<std::string> raw;   // original lines
  std::vector<std::string> code;  // comments + string/char literals blanked
  std::map<size_t, Suppression> nolint;  // line (1-based) -> suppression
  // Flattened views built once by Flatten(): lines joined with '\n', plus a
  // char-index -> 0-based-line map. flat_raw and flat_code have identical
  // lengths and column positions, so a string literal can be recovered from
  // flat_raw at any offset found in flat_code.
  std::string flat_raw;
  std::string flat_code;
  std::vector<size_t> line_of;
};

extern const char* const kRuleIds[];
extern const size_t kNumRuleIds;
bool IsKnownRule(const std::string& id);

// ------------------------------------------------------------- scrubbing ---

// Blanks comments and string/char literal bodies with spaces, preserving
// line structure and column positions so findings point at real code.
std::vector<std::string> Scrub(const std::vector<std::string>& raw);

// Parses `NOLINT(warplint-a,warplint-b)` (optionally followed by
// `: justification`) out of the raw line's comment tail.
void ParseNolint(SourceFile* f);

// Builds flat_raw / flat_code / line_of.
void Flatten(SourceFile* f);

// --------------------------------------------------------- small helpers ---

bool IsIdent(char c);
bool HasWord(const std::string& text, const std::string& word,
             size_t* at = nullptr);
std::string Trim(std::string s);
bool StartsWith(const std::string& s, const std::string& p);
// The layer is the first path component under src/ ("src/core/x.h" ->
// "core"); empty for files outside src/.
std::string LayerOf(const std::string& rel);
std::string JsonEscape(const std::string& s);

// ---------------------------------------------------------- body mapping ---

// Function-body map: for each line, which function body encloses it.
struct BodyRange {
  std::string cls;    // qualifier before :: for methods; empty for free fns
  std::string name;
  size_t head_line;   // 1-based line of the function name token
  size_t begin_line;  // 1-based, inclusive (line of the opening brace)
  size_t end_line;
};

// Handles `Name::Method(args) [const] [noexcept] [: init-list] {`.
std::vector<BodyRange> ExtractMethodBodies(const SourceFile& f);

// Free-function map for TUs whose hot code is namespace-scope functions
// rather than class methods (core/simd_kernels.cc). Matches
// `Name(args) [attrs] {` at whatever scope it appears, skipping control
// keywords; recorded bodies are jumped over whole, so `if (...) {` inside
// a function never masquerades as a definition.
std::vector<BodyRange> ExtractFreeFunctionBodies(const SourceFile& f);

// Broad hot-path predicate used by warplint-hotpath-sync (anything that can
// run inside a sweep's token loops, including the fused serial phases).
bool IsHotFunction(const std::string& name);

// Tight concurrent-grid-body predicate used by the contract and rng-stream
// passes: only bodies that run on worker threads *between* stage barriers,
// where writes to shared state are races by construction. Deliberately
// excludes WordPhase/DocPhase/Iterate (serial fused path, direct count
// updates are legal there) and barrier-side helpers like ApplyStagedMoves /
// ApplyBlockDelta, and is substring-safe (PartitionStatic is not "hot").
bool IsContractHotBody(const std::string& name);

// ------------------------------------------------------------ class model ---

enum class Contract { kNone, kWorkerLocal, kBarrierOnly, kImmutableAfter };

struct FieldDecl {
  std::string type;  // declaration text before the name, spaces collapsed
  std::string name;
  size_t line = 0;   // 1-based declaration line
  Contract contract = Contract::kNone;
  std::vector<std::string> writers;  // WARP_IMMUTABLE_AFTER(...) method list
};

struct ClassDef {
  std::string name;       // e.g. "GridState"
  std::string qualified;  // e.g. "WarpLdaSampler::GridState"
  std::string file;
  size_t line = 0;        // 1-based line of the class-head name
  Contract contract = Contract::kNone;  // class-level annotation
  std::vector<std::string> writers;
  std::vector<FieldDecl> fields;  // direct data members, declaration order
};

// Collects every struct/class definition in the file with its direct field
// declarations (methods, statics, usings and nested definitions skipped)
// and any WARP_WORKER_LOCAL / WARP_BARRIER_ONLY / WARP_IMMUTABLE_AFTER(...)
// annotations on the class head or on individual members.
std::vector<ClassDef> CollectClasses(const SourceFile& f);

// True if the access that starts where the member token ends mutates the
// member: assignment (including op=), ++/-- (either side), a mutating
// member-function call (push_back/assign/resize/...), or an assignment
// reached through a dotted field chain (`cfg_.alpha = x` mutates cfg_).
// `begin`/`end` delimit the member token inside `line` (scrubbed).
bool IsWriteAccess(const std::string& line, size_t begin, size_t end);

}  // namespace warplint

#endif  // WARPLINT_LINT_MODEL_H_

// The original token/line rule families (PR 7/8): determinism,
// unordered-iter, hotpath-sync, scalar-ref, layering, naked-new,
// memcpy-nontrivial, alignas-pad, nolint hygiene. Moved verbatim from the
// single-file warplint.cc when it grew rule families; behavior is pinned by
// tests/lint_test.cc.

#include <functional>

#include "lint_rules.h"

namespace warplint {

// ------------------------------------------------------------ rule: R1 -----

namespace {
struct DeterminismPattern {
  const char* token;     // identifier to search for (word-delimited)
  bool call_only;        // require '(' as next non-space char
  const char* message;
};
}  // namespace

void CheckDeterminism(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/") && !StartsWith(f.rel, "bench/")) return;
  static const DeterminismPattern kPatterns[] = {
      {"rand", true,
       "rand() is seeded process-globally; use util/rng.h per-token streams"},
      {"srand", true,
       "srand() reseeds global state; use util/rng.h per-token streams"},
      {"rand_r", false,
       "rand_r() is not a per-token stream; use util/rng.h"},
      {"drand48", false,
       "drand48() is global-state; use util/rng.h per-token streams"},
      {"random_device", false,
       "std::random_device is non-reproducible; seeds must be explicit so "
       "sweeps stay bit-identical"},
      {"gettimeofday", false,
       "wall-clock values must not feed sampling; use explicit seeds"},
      {"system_clock", false,
       "wall-clock time must not feed sampling or seeds; use explicit seeds "
       "(steady_clock is fine for durations)"},
  };
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (const auto& p : kPatterns) {
      size_t at = 0;
      if (!HasWord(s, p.token, &at)) continue;
      if (p.call_only) {
        size_t j = at + std::string(p.token).size();
        while (j < s.size() && s[j] == ' ') ++j;
        if (j >= s.size() || s[j] != '(') continue;
      }
      out->push_back({f.rel, ln + 1, "determinism", p.message, false});
    }
    // time(NULL) / time(nullptr) / time(0) — wall-clock seeding.
    size_t at = 0;
    if (HasWord(s, "time", &at)) {
      size_t j = at + 4;
      while (j < s.size() && s[j] == ' ') ++j;
      if (j < s.size() && s[j] == '(') {
        std::string arg = Trim(s.substr(j + 1, s.find(')', j) - j - 1));
        if (arg == "NULL" || arg == "nullptr" || arg == "0" || arg.empty()) {
          out->push_back({f.rel, ln + 1, "determinism",
                          "time() wall-clock seeding breaks reproducibility; "
                          "use explicit seeds",
                          false});
        }
      }
    }
  }
}

// ------------------------------------------------------------ rule: R2 -----

// Collects identifiers declared with an unordered container type in this
// file, then flags range-fors / .begin() iteration over them.
void CheckUnorderedIter(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  std::set<std::string> unordered_names;
  for (const std::string& s : f.code) {
    size_t pos = 0;
    while ((pos = s.find("unordered_", pos)) != std::string::npos) {
      size_t j = pos;
      while (j < s.size() && IsIdent(s[j])) ++j;
      // Skip the template argument list, tracking angle-bracket depth.
      while (j < s.size() && s[j] == ' ') ++j;
      if (j >= s.size() || s[j] != '<') {
        pos = j;
        continue;
      }
      int depth = 0;
      for (; j < s.size(); ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>' && --depth == 0) {
          ++j;
          break;
        }
      }
      while (j < s.size() && (s[j] == ' ' || s[j] == '&')) ++j;
      size_t name_start = j;
      while (j < s.size() && IsIdent(s[j])) ++j;
      if (j > name_start) {
        // Declaration if followed by ; = { ( or end of line.
        size_t k = j;
        while (k < s.size() && s[k] == ' ') ++k;
        if (k >= s.size() || s[k] == ';' || s[k] == '=' || s[k] == '{' ||
            s[k] == '(') {
          unordered_names.insert(s.substr(name_start, j - name_start));
        }
      }
      pos = j;
    }
  }
  if (unordered_names.empty()) return;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    // Range-for: `for (decl : expr)` where expr is a bare unordered name.
    size_t at = 0;
    if (HasWord(s, "for", &at)) {
      // Find the range-for colon, stepping over any `::` qualifiers in the
      // loop-variable declaration.
      size_t colon = s.find(':', at);
      while (colon != std::string::npos && colon + 1 < s.size() &&
             s[colon + 1] == ':') {
        colon = s.find(':', colon + 2);
      }
      if (colon != std::string::npos && colon + 1 < s.size() &&
          (colon == 0 || s[colon - 1] != ':')) {
        size_t close = s.find(')', colon);
        if (close != std::string::npos) {
          std::string expr = Trim(s.substr(colon + 1, close - colon - 1));
          if (StartsWith(expr, "this->")) expr = expr.substr(6);
          if (unordered_names.count(expr) > 0) {
            out->push_back(
                {f.rel, ln + 1, "unordered-iter",
                 "iteration order over '" + expr +
                     "' is hash-seed dependent; sort keys first (or NOLINT "
                     "with a justification if order provably never reaches "
                     "serialized/published output)",
                 false});
          }
        }
      }
    }
    // Iterator loops: `name.begin()` / `name.cbegin()`.
    for (const std::string& name : unordered_names) {
      size_t p = 0;
      if (HasWord(s, name, &p) &&
          (s.compare(p + name.size(), 7, ".begin(") == 0 ||
           s.compare(p + name.size(), 8, ".cbegin(") == 0)) {
        out->push_back({f.rel, ln + 1, "unordered-iter",
                        "iterator walk over unordered container '" + name +
                            "' is hash-seed dependent; sort keys first",
                        false});
      }
    }
  }
}

// ------------------------------------------------------------ rule: R3 -----

void CheckHotpathSync(const SourceFile& f, std::vector<Finding>* out) {
  const bool kernel_tu = f.rel == "src/core/simd_kernels.cc";
  bool scoped = f.rel == "src/core/warp_lda.cc" || kernel_tu ||
                (StartsWith(f.rel, "src/baselines/") &&
                 f.rel.size() > 3 && f.rel.substr(f.rel.size() - 3) == ".cc");
  if (!scoped) return;
  static const char* const kSyncTokens[] = {
      "fetch_add",   "fetch_sub",  "fetch_and",       "fetch_or",
      "fetch_xor",   "exchange",   "compare_exchange_weak",
      "compare_exchange_strong",   "lock_guard",      "unique_lock",
      "scoped_lock", "shared_lock", "try_lock",       "mutex",
  };
  std::vector<BodyRange> bodies = ExtractMethodBodies(f);
  if (kernel_tu) {
    // The SIMD kernel TU's hot code is free functions, not methods.
    std::vector<BodyRange> free_bodies = ExtractFreeFunctionBodies(f);
    bodies.insert(bodies.end(), free_bodies.begin(), free_bodies.end());
  }
  for (const BodyRange& b : bodies) {
    if (!IsHotFunction(b.name)) continue;
    for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
         ++ln) {
      const std::string& s = f.code[ln - 1];
      for (const char* tok : kSyncTokens) {
        if (HasWord(s, tok)) {
          out->push_back(
              {f.rel, ln, "hotpath-sync",
               std::string(tok) + " inside hot-path body '" + b.name +
                   "' — accumulate in ThreadScratch and flush at a stage "
                   "barrier (per-token synchronization breaks the O(1) "
                   "hot-path claim)",
               false});
          break;  // one finding per line is enough
        }
      }
      // `.lock()` / `->lock()` calls (the bare word "lock" would also hit
      // "block", so match the call shape explicitly).
      size_t p = s.find("lock(");
      while (p != std::string::npos) {
        bool member_call =
            (p >= 1 && s[p - 1] == '.') ||
            (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>');
        if (member_call) {
          out->push_back({f.rel, ln, "hotpath-sync",
                          "lock() call inside hot-path body '" + b.name +
                              "' — flush at a stage barrier instead",
                          false});
          break;
        }
        p = s.find("lock(", p + 1);
      }
    }
  }
}

// ---------------------------------------------------------- rule: R3b -----

// The *Scalar kernels in core/simd_kernels.cc are the portable reference
// implementations the vector paths are verified bit-identical against —
// an intrinsic inside one silently turns the oracle into the thing under
// test (and breaks non-x86 builds, where only the scalar paths compile).
void CheckScalarRef(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel != "src/core/simd_kernels.cc") return;
  auto is_intrinsic_at = [&](const std::string& s, size_t p) {
    if (p > 0 && IsIdent(s[p - 1])) return false;  // mid-identifier
    if (s.compare(p, 3, "_mm") == 0) return true;  // _mm_/_mm256_/_mm512_
    // Vector register types: __m128*, __m256*, __m512*.
    return s.compare(p, 4, "__m1") == 0 || s.compare(p, 4, "__m2") == 0 ||
           s.compare(p, 4, "__m5") == 0;
  };
  for (const BodyRange& b : ExtractFreeFunctionBodies(f)) {
    if (b.name.find("Scalar") == std::string::npos) continue;
    for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
         ++ln) {
      const std::string& s = f.code[ln - 1];
      for (size_t p = 0; p < s.size(); ++p) {
        if (!is_intrinsic_at(s, p)) continue;
        out->push_back(
            {f.rel, ln, "scalar-ref",
             "SIMD intrinsic inside scalar reference kernel '" + b.name +
                 "' — the scalar path is the bit-identity oracle and must "
                 "stay portable; move vector code to an *Avx2 twin behind "
                 "runtime dispatch",
             false});
        break;  // one finding per line is enough
      }
    }
  }
}

// ------------------------------------------------------------ rule: R4 -----

namespace {
// Allowed include targets per src/ layer. The two obs/ headers listed in
// IsSeamHeader are the sanctioned cross-cutting instrumentation seams and
// may be included from any layer.
const std::map<std::string, std::set<std::string>>& LayerAllowance() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"obs", {"obs"}},
      {"util", {"util"}},
      {"corpus", {"corpus", "util"}},
      {"cachesim", {"cachesim", "util"}},
      {"eval", {"eval", "corpus", "util"}},
      {"baselines", {"baselines", "cachesim", "corpus", "util"}},
      {"core",
       {"core", "baselines", "eval", "corpus", "cachesim", "util"}},
      {"dist",
       {"dist", "core", "baselines", "eval", "corpus", "cachesim", "util"}},
      {"serve", {"serve", "core", "eval", "corpus", "util"}},
  };
  return kAllowed;
}

bool IsSeamHeader(const std::string& inc) {
  return inc == "obs/metrics.h" || inc == "obs/trace.h";
}
}  // namespace

void CollectIncludes(const SourceFile& f, std::vector<IncludeEdge>* edges) {
  for (size_t ln = 0; ln < f.raw.size(); ++ln) {
    const std::string& s = f.raw[ln];
    size_t pos = s.find("#include");
    if (pos == std::string::npos) continue;
    size_t q1 = s.find('"', pos);
    if (q1 == std::string::npos) continue;  // <system> include
    size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    edges->push_back({f.rel, ln + 1, s.substr(q1 + 1, q2 - q1 - 1)});
  }
}

void CheckLayering(const std::vector<IncludeEdge>& edges,
                   const std::set<std::string>& repo_headers,
                   std::vector<Finding>* out) {
  // Per-file layer checks.
  for (const IncludeEdge& e : edges) {
    std::string layer = LayerOf(e.from_rel);
    if (layer.empty()) continue;  // tests/bench may include anything
    size_t slash = e.target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    std::string target_layer = e.target.substr(0, slash);
    const auto& allowed = LayerAllowance();
    auto it = allowed.find(layer);
    if (it == allowed.end()) {
      out->push_back({e.from_rel, e.line, "layering",
                      "unknown src/ layer '" + layer +
                          "' — add it to the warplint layer map",
                      false});
      continue;
    }
    if (allowed.count(target_layer) == 0) continue;  // not a src/ layer path
    if (it->second.count(target_layer) > 0) continue;
    if (IsSeamHeader(e.target)) continue;  // sanctioned instrumentation seam
    out->push_back(
        {e.from_rel, e.line, "layering",
         "layer '" + layer + "' must not include '" + e.target +
             "' (allowed: own layer and below; obs/metrics.h and "
             "obs/trace.h are the only sanctioned cross-cutting seams)",
         false});
  }
  // Include-cycle detection over repo headers (nodes are include paths).
  std::map<std::string, std::vector<const IncludeEdge*>> graph;
  for (const IncludeEdge& e : edges) {
    if (!StartsWith(e.from_rel, "src/")) continue;
    std::string from_key = e.from_rel.substr(4);  // path relative to src/
    if (repo_headers.count(e.target) > 0) graph[from_key].push_back(&e);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const IncludeEdge* e : graph[node]) {
      int c = color.count(e->target) > 0 ? color[e->target] : 0;
      if (c == 1) {
        // Back edge: a cycle through `stack` from e->target to node.
        std::string cyc = e->target;
        for (size_t s = stack.size(); s-- > 0;) {
          cyc += " -> " + stack[s];
          if (stack[s] == e->target) break;
        }
        if (reported.insert(cyc).second) {
          out->push_back({e->from_rel, e->line, "layering",
                          "include cycle: " + cyc, false});
        }
      } else if (c == 0) {
        dfs(e->target);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, unused] : graph) {
    (void)unused;
    if (color[node] == 0) dfs(node);
  }
}

// ------------------------------------------------------------ rule: R5 -----

void CheckNakedNew(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t at = 0;
    if (HasWord(s, "new", &at)) {
      out->push_back({f.rel, ln + 1, "naked-new",
                      "naked new — use std::make_unique/make_shared or a "
                      "container; a deliberate leaked singleton needs a "
                      "NOLINT with a justification",
                      false});
    }
    if (HasWord(s, "delete", &at)) {
      // `= delete;` (deleted special member) is fine.
      size_t b = at;
      while (b > 0 && s[b - 1] == ' ') --b;
      if (b > 0 && s[b - 1] == '=') continue;
      out->push_back({f.rel, ln + 1, "naked-new",
                      "naked delete — ownership must live in a smart "
                      "pointer or container",
                      false});
    }
  }
}

// ------------------------------------------------------------ rule: R6 -----

namespace {
// Identifiers declared with a non-trivially-copyable std:: type in this
// file (value declarations, by no means exhaustive — the rule is a tripwire,
// not a type checker).
std::set<std::string> NonTrivialDecls(const SourceFile& f) {
  static const char* const kTypes[] = {
      "string", "vector",   "deque",      "list",       "map",
      "set",    "function", "shared_ptr", "unique_ptr", "unordered_map",
      "unordered_set",
  };
  std::set<std::string> names;
  for (const std::string& s : f.code) {
    for (const char* t : kTypes) {
      size_t at = 0;
      std::string tok = t;
      size_t search = 0;
      while (search < s.size()) {
        std::string sub = s.substr(search);
        if (!HasWord(sub, tok, &at)) break;
        size_t j = search + at + tok.size();
        if (s.compare(j, 1, "<") == 0) {  // skip template args
          int depth = 0;
          for (; j < s.size(); ++j) {
            if (s[j] == '<') ++depth;
            if (s[j] == '>' && --depth == 0) {
              ++j;
              break;
            }
          }
        } else if (tok != "string") {
          search = j;
          continue;  // vector without <..> isn't a declaration
        }
        while (j < s.size() && s[j] == ' ') ++j;
        size_t name_start = j;
        while (j < s.size() && IsIdent(s[j])) ++j;
        if (j > name_start) {
          size_t k = j;
          while (k < s.size() && s[k] == ' ') ++k;
          if (k >= s.size() || s[k] == ';' || s[k] == '=' || s[k] == '{' ||
              s[k] == '(') {
            names.insert(s.substr(name_start, j - name_start));
          }
        }
        search = j;
      }
    }
  }
  return names;
}
}  // namespace

void CheckMemcpyNontrivial(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  std::set<std::string> nontrivial = NonTrivialDecls(f);
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t at = 0;
    if (!HasWord(s, "memcpy", &at) && !HasWord(s, "__builtin_memcpy", &at))
      continue;
    size_t open = s.find('(', at);
    if (open == std::string::npos) continue;
    // First two arguments, split at depth-0 commas.
    std::vector<std::string> argv;
    int depth = 0;
    std::string cur;
    for (size_t j = open + 1; j < s.size(); ++j) {
      char c = s[j];
      if (c == '(') ++depth;
      if (c == ')') {
        if (depth == 0) {
          argv.push_back(Trim(cur));
          break;
        }
        --depth;
      }
      if (c == ',' && depth == 0) {
        argv.push_back(Trim(cur));
        cur.clear();
        continue;
      }
      cur.push_back(c);
    }
    for (size_t a = 0; a < argv.size() && a < 2; ++a) {
      std::string arg = argv[a];
      if (arg == "this") {
        out->push_back({f.rel, ln + 1, "memcpy-nontrivial",
                        "memcpy over *this tramples invariants (and any "
                        "vtable); copy members explicitly",
                        false});
        continue;
      }
      if (!arg.empty() && arg[0] == '&') arg = Trim(arg.substr(1));
      // `&vec` / `vec` where vec is a non-trivial object (its .data() is
      // fine — that's the element buffer, not the control block).
      if (arg.find('.') == std::string::npos &&
          arg.find("->") == std::string::npos &&
          nontrivial.count(arg) > 0) {
        out->push_back(
            {f.rel, ln + 1, "memcpy-nontrivial",
             "memcpy over non-trivially-copyable object '" + arg +
                 "' corrupts its control block; use assignment or .data()",
             false});
      }
    }
  }
}

// ------------------------------------------------------------ rule: R7 -----

// Pass 1 collects `struct/class alignas(64) Name` across all files; pass 2
// flags (a) alignas(64) on an array whose element type is not itself
// alignas(64), (b) a member-level alignas(64) followed by an unaligned,
// non-padding member in the same struct body.
void CollectAlignedTypes(const SourceFile& f, std::set<std::string>* types) {
  for (const std::string& s : f.code) {
    size_t pos = s.find("alignas");
    if (pos == std::string::npos) continue;
    size_t sw = s.find("struct");
    size_t cw = s.find("class");
    size_t kw = std::min(sw == std::string::npos ? s.size() : sw,
                         cw == std::string::npos ? s.size() : cw);
    if (kw >= pos) continue;  // alignas not preceded by struct/class
    size_t close = s.find(')', pos);
    if (close == std::string::npos) continue;
    size_t j = close + 1;
    while (j < s.size() && s[j] == ' ') ++j;
    size_t name_start = j;
    while (j < s.size() && IsIdent(s[j])) ++j;
    if (j > name_start) types->insert(s.substr(name_start, j - name_start));
  }
}

void CheckAlignasPad(const SourceFile& f,
                     const std::set<std::string>& aligned_types,
                     std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  bool prev_member_alignas = false;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t pos = s.find("alignas(");
    bool line_has_member_alignas = false;
    if (pos != std::string::npos && s.find("struct") == std::string::npos &&
        s.find("class") == std::string::npos) {
      size_t close = s.find(')', pos);
      std::string width =
          close == std::string::npos
              ? ""
              : Trim(s.substr(pos + 8, close - pos - 8));
      if (width == "64" && close != std::string::npos) {
        // Declaration shape after alignas(64): Type name [ '[' ... ]
        size_t j = close + 1;
        while (j < s.size() && s[j] == ' ') ++j;
        size_t type_start = j;
        while (j < s.size() && (IsIdent(s[j]) || s[j] == ':')) ++j;
        std::string type = s.substr(type_start, j - type_start);
        size_t name_pos = j;
        while (name_pos < s.size() && s[name_pos] == ' ') ++name_pos;
        size_t name_end = name_pos;
        while (name_end < s.size() && IsIdent(s[name_end])) ++name_end;
        size_t after = name_end;
        while (after < s.size() && s[after] == ' ') ++after;
        bool is_array = after < s.size() && s[after] == '[';
        std::string bare_type = type;
        size_t last_colon = bare_type.rfind(':');
        if (last_colon != std::string::npos)
          bare_type = bare_type.substr(last_colon + 1);
        if (is_array && aligned_types.count(bare_type) == 0) {
          out->push_back(
              {f.rel, ln + 1, "alignas-pad",
               "alignas(64) on an array only aligns the base address; "
               "elements of '" + type +
                   "' still straddle cache lines — declare the element "
                   "struct alignas(64) instead",
               false});
        }
        // A member whose type is itself alignas(64) occupies whole cache
        // lines, so the next member starts on a fresh line; anything else
        // (scalars, atomics) leaves tail space the next member lands in.
        line_has_member_alignas = aligned_types.count(bare_type) == 0;
      }
    }
    // (b) member after an alignas(64) member without its own alignas.
    std::string t = Trim(s);
    bool is_member_decl =
        !t.empty() && t.back() == ';' && t.find('(') == std::string::npos &&
        t.find('}') == std::string::npos && t.find("using") != 0 &&
        t.find("return") != 0 && t.find("static_assert") != 0;
    if (prev_member_alignas && is_member_decl &&
        t.find("alignas") == std::string::npos &&
        t.find("pad") == std::string::npos) {
      out->push_back(
          {f.rel, ln + 1, "alignas-pad",
           "member declared right after an alignas(64) member shares its "
           "cache line — align it too, add explicit padding, or move the "
           "alignas to the struct",
           false});
    }
    if (!t.empty()) {
      prev_member_alignas = line_has_member_alignas && !t.empty() &&
                            t.back() == ';';
    }
  }
}

// ------------------------------------------------------------ rule: R8 -----

void CheckNolintHygiene(const SourceFile& f, std::vector<Finding>* out) {
  for (const auto& [line, sup] : f.nolint) {
    for (const std::string& id : sup.rules) {
      if (!IsKnownRule(id)) {
        out->push_back({f.rel, line, "nolint",
                        "NOLINT names unknown rule 'warplint-" + id + "'",
                        false});
      }
    }
    if (!sup.justified) {
      out->push_back({f.rel, line, "nolint",
                      "NOLINT(warplint-*) without a justification — append "
                      "': <why this is safe>'",
                      false});
    }
  }
}

}  // namespace warplint

// warplint — repo-native invariant linter for the WarpLDA codebase.
//
// Generic tools (clang-tidy, sanitizers) cannot know the rules this repo
// lives by: bit-identical sampling under any block schedule or thread
// count, and O(1) cache-resident hot paths with no per-token
// synchronization. warplint walks src/, tests/, and bench/ at the
// token/line level and enforces the invariants behind those claims:
//
//   warplint-determinism      no rand()/random_device/wall-clock seeding in
//                             src/ or bench/ — only util/rng.h per-token
//                             streams keep sweeps bit-identical.
//   warplint-unordered-iter   no iteration over std::unordered_{map,set}:
//                             iteration order is hash-seed dependent, so
//                             anything it feeds (serialized frames,
//                             published snapshots, checkpoints) loses
//                             bit-identity.
//   warplint-hotpath-sync     no atomic RMW or lock acquisition inside
//                             RunBlock / token-loop / fused-part /
//                             SIMD-kernel bodies in core/warp_lda.cc,
//                             core/simd_kernels.cc and baselines —
//                             accumulate in ThreadScratch, flush at stage
//                             barriers.
//   warplint-scalar-ref       the *Scalar reference kernels in
//                             core/simd_kernels.cc must stay free of SIMD
//                             intrinsics — they are the bit-identity
//                             oracle the vector paths are checked against,
//                             so they must compile and run on any CPU.
//   warplint-layering         util/ includes nothing above it; core/ never
//                             includes serve/ or dist/; the only sanctioned
//                             cross-cutting seams are obs/metrics.h and
//                             obs/trace.h; no include cycles.
//   warplint-naked-new        no naked new/delete in src/ — deliberate
//                             leaked singletons carry a NOLINT with a
//                             justification.
//   warplint-memcpy-nontrivial  no memcpy into std::string/std::vector/...
//                             objects or into *this.
//   warplint-alignas-pad      alignas(64) on an array only aligns the
//                             base; elements still straddle cache lines —
//                             put alignas(64) on the element struct. A
//                             member-level alignas(64) followed by an
//                             unaligned member shares its line too.
//   warplint-nolint           every NOLINT(warplint-*) must name a known
//                             rule and carry a ": justification".
//
// Suppression: append `// NOLINT(warplint-<rule>): <why this is safe>` to
// the offending line. Suppressions are counted and reported in the JSON
// summary so they stay visible.
//
// Usage: warplint --root <repo-root> [--json] [--dirs src,tests,bench]
// Exit:  0 clean, 1 unsuppressed violations, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ----------------------------------------------------------------- model ---

struct Finding {
  std::string file;  // path relative to --root
  size_t line = 0;   // 1-based
  std::string rule;  // short id, e.g. "determinism"
  std::string message;
  bool suppressed = false;
};

struct Suppression {
  std::set<std::string> rules;  // short ids named in NOLINT(...)
  bool justified = false;
};

struct SourceFile {
  std::string rel;                // e.g. "src/core/warp_lda.cc"
  std::vector<std::string> raw;   // original lines
  std::vector<std::string> code;  // comments + string/char literals blanked
  std::map<size_t, Suppression> nolint;  // line (1-based) -> suppression
};

const char* const kRuleIds[] = {
    "determinism",   "unordered-iter",     "hotpath-sync", "layering",
    "naked-new",     "memcpy-nontrivial",  "alignas-pad",  "nolint",
    "scalar-ref",
};

bool IsKnownRule(const std::string& id) {
  for (const char* r : kRuleIds) {
    if (id == r) return true;
  }
  return false;
}

// ------------------------------------------------------------- scrubbing ---

// Blanks comments and string/char literal bodies with spaces, preserving
// line structure and column positions so findings point at real code.
std::vector<std::string> Scrub(const std::vector<std::string>& raw) {
  std::vector<std::string> out(raw.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (size_t ln = 0; ln < raw.size(); ++ln) {
    const std::string& s = raw[ln];
    std::string o(s.size(), ' ');
    if (st == St::kLineComment) st = St::kCode;  // ends at newline
    for (size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      char n = i + 1 < s.size() ? s[i + 1] : '\0';
      switch (st) {
        case St::kCode:
          if (c == '/' && n == '/') {
            st = St::kLineComment;
          } else if (c == '/' && n == '*') {
            st = St::kBlockComment;
            ++i;
          } else if (c == '"') {
            o[i] = '"';
            st = St::kString;
          } else if (c == '\'') {
            o[i] = '\'';
            st = St::kChar;
          } else {
            o[i] = c;
          }
          break;
        case St::kLineComment:
          break;  // blank to end of line
        case St::kBlockComment:
          if (c == '*' && n == '/') {
            st = St::kCode;
            ++i;
          }
          break;
        case St::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            o[i] = '"';
            st = St::kCode;
          }
          break;
        case St::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            o[i] = '\'';
            st = St::kCode;
          }
          break;
      }
    }
    out[ln] = std::move(o);
  }
  return out;
}

// Parses `NOLINT(warplint-a,warplint-b)` (optionally followed by
// `: justification`) out of the raw line's comment tail.
void ParseNolint(SourceFile* f) {
  for (size_t ln = 0; ln < f->raw.size(); ++ln) {
    const std::string& s = f->raw[ln];
    size_t pos = s.find("NOLINT(");
    if (pos == std::string::npos) continue;
    size_t open = pos + 6;  // index of '('
    size_t close = s.find(')', open);
    if (close == std::string::npos) continue;
    Suppression sup;
    std::string inside = s.substr(open + 1, close - open - 1);
    std::stringstream ss(inside);
    std::string id;
    while (std::getline(ss, id, ',')) {
      // trim
      while (!id.empty() && std::isspace(static_cast<unsigned char>(id.front())))
        id.erase(id.begin());
      while (!id.empty() && std::isspace(static_cast<unsigned char>(id.back())))
        id.pop_back();
      const std::string prefix = "warplint-";
      if (id.rfind(prefix, 0) == 0) sup.rules.insert(id.substr(prefix.size()));
    }
    if (sup.rules.empty()) continue;  // someone else's NOLINT (clang-tidy)
    // Justification: a ':' right after the ')' with non-empty text.
    size_t j = close + 1;
    if (j < s.size() && s[j] == ':') {
      ++j;
      while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j]))) ++j;
      sup.justified = j < s.size();
    }
    f->nolint[ln + 1] = std::move(sup);
  }
}

// --------------------------------------------------------- small helpers ---

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True if `text` contains `word` delimited by non-identifier characters.
bool HasWord(const std::string& text, const std::string& word,
             size_t* at = nullptr) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    bool l = pos == 0 || !IsIdent(text[pos - 1]);
    size_t end = pos + word.size();
    bool r = end >= text.size() || !IsIdent(text[end]);
    if (l && r) {
      if (at != nullptr) *at = pos;
      return true;
    }
    pos += word.size();
  }
  return false;
}

std::string Trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.erase(s.begin());
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.pop_back();
  return s;
}

bool StartsWith(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// The layer is the first path component under src/ ("src/core/x.h" ->
// "core"); empty for files outside src/.
std::string LayerOf(const std::string& rel) {
  if (!StartsWith(rel, "src/")) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

// ------------------------------------------------------------ rule: R1 -----

struct DeterminismPattern {
  const char* token;     // identifier to search for (word-delimited)
  bool call_only;        // require '(' as next non-space char
  const char* message;
};

void CheckDeterminism(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/") && !StartsWith(f.rel, "bench/")) return;
  static const DeterminismPattern kPatterns[] = {
      {"rand", true,
       "rand() is seeded process-globally; use util/rng.h per-token streams"},
      {"srand", true,
       "srand() reseeds global state; use util/rng.h per-token streams"},
      {"rand_r", false,
       "rand_r() is not a per-token stream; use util/rng.h"},
      {"drand48", false,
       "drand48() is global-state; use util/rng.h per-token streams"},
      {"random_device", false,
       "std::random_device is non-reproducible; seeds must be explicit so "
       "sweeps stay bit-identical"},
      {"gettimeofday", false,
       "wall-clock values must not feed sampling; use explicit seeds"},
      {"system_clock", false,
       "wall-clock time must not feed sampling or seeds; use explicit seeds "
       "(steady_clock is fine for durations)"},
  };
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (const auto& p : kPatterns) {
      size_t at = 0;
      if (!HasWord(s, p.token, &at)) continue;
      if (p.call_only) {
        size_t j = at + std::string(p.token).size();
        while (j < s.size() && s[j] == ' ') ++j;
        if (j >= s.size() || s[j] != '(') continue;
      }
      out->push_back({f.rel, ln + 1, "determinism", p.message, false});
    }
    // time(NULL) / time(nullptr) / time(0) — wall-clock seeding.
    size_t at = 0;
    if (HasWord(s, "time", &at)) {
      size_t j = at + 4;
      while (j < s.size() && s[j] == ' ') ++j;
      if (j < s.size() && s[j] == '(') {
        std::string arg = Trim(s.substr(j + 1, s.find(')', j) - j - 1));
        if (arg == "NULL" || arg == "nullptr" || arg == "0" || arg.empty()) {
          out->push_back({f.rel, ln + 1, "determinism",
                          "time() wall-clock seeding breaks reproducibility; "
                          "use explicit seeds",
                          false});
        }
      }
    }
  }
}

// ------------------------------------------------------------ rule: R2 -----

// Collects identifiers declared with an unordered container type in this
// file, then flags range-fors / .begin() iteration over them.
void CheckUnorderedIter(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  std::set<std::string> unordered_names;
  for (const std::string& s : f.code) {
    size_t pos = 0;
    while ((pos = s.find("unordered_", pos)) != std::string::npos) {
      size_t j = pos;
      while (j < s.size() && IsIdent(s[j])) ++j;
      // Skip the template argument list, tracking angle-bracket depth.
      while (j < s.size() && s[j] == ' ') ++j;
      if (j >= s.size() || s[j] != '<') {
        pos = j;
        continue;
      }
      int depth = 0;
      for (; j < s.size(); ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>' && --depth == 0) {
          ++j;
          break;
        }
      }
      while (j < s.size() && (s[j] == ' ' || s[j] == '&')) ++j;
      size_t name_start = j;
      while (j < s.size() && IsIdent(s[j])) ++j;
      if (j > name_start) {
        // Declaration if followed by ; = { ( or end of line.
        size_t k = j;
        while (k < s.size() && s[k] == ' ') ++k;
        if (k >= s.size() || s[k] == ';' || s[k] == '=' || s[k] == '{' ||
            s[k] == '(') {
          unordered_names.insert(s.substr(name_start, j - name_start));
        }
      }
      pos = j;
    }
  }
  if (unordered_names.empty()) return;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    // Range-for: `for (decl : expr)` where expr is a bare unordered name.
    size_t at = 0;
    if (HasWord(s, "for", &at)) {
      // Find the range-for colon, stepping over any `::` qualifiers in the
      // loop-variable declaration.
      size_t colon = s.find(':', at);
      while (colon != std::string::npos && colon + 1 < s.size() &&
             s[colon + 1] == ':') {
        colon = s.find(':', colon + 2);
      }
      if (colon != std::string::npos && colon + 1 < s.size() &&
          (colon == 0 || s[colon - 1] != ':')) {
        size_t close = s.find(')', colon);
        if (close != std::string::npos) {
          std::string expr = Trim(s.substr(colon + 1, close - colon - 1));
          if (StartsWith(expr, "this->")) expr = expr.substr(6);
          if (unordered_names.count(expr) > 0) {
            out->push_back(
                {f.rel, ln + 1, "unordered-iter",
                 "iteration order over '" + expr +
                     "' is hash-seed dependent; sort keys first (or NOLINT "
                     "with a justification if order provably never reaches "
                     "serialized/published output)",
                 false});
          }
        }
      }
    }
    // Iterator loops: `name.begin()` / `name.cbegin()`.
    for (const std::string& name : unordered_names) {
      size_t p = 0;
      if (HasWord(s, name, &p) &&
          (s.compare(p + name.size(), 7, ".begin(") == 0 ||
           s.compare(p + name.size(), 8, ".cbegin(") == 0)) {
        out->push_back({f.rel, ln + 1, "unordered-iter",
                        "iterator walk over unordered container '" + name +
                            "' is hash-seed dependent; sort keys first",
                        false});
      }
    }
  }
}

// ------------------------------------------------------------ rule: R3 -----

// Function-body map: for each line, which method body encloses it.
// Handles `Name::Method(args) [const] [noexcept] [: init-list] {`.
struct BodyRange {
  std::string name;
  size_t begin_line;  // 1-based, inclusive
  size_t end_line;
};

std::vector<BodyRange> ExtractMethodBodies(const SourceFile& f) {
  std::vector<BodyRange> bodies;
  // Flatten with line indices.
  std::string text;
  std::vector<size_t> line_of;  // char index -> line (0-based)
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    for (char c : f.code[ln]) {
      text.push_back(c);
      line_of.push_back(ln);
    }
    text.push_back('\n');
    line_of.push_back(ln);
  }
  size_t i = 0;
  while ((i = text.find("::", i)) != std::string::npos) {
    size_t name_start = i + 2;
    size_t j = name_start;
    while (j < text.size() && IsIdent(text[j])) ++j;
    if (j == name_start) {
      i += 2;
      continue;
    }
    std::string name = text.substr(name_start, j - name_start);
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j >= text.size() || text[j] != '(') {
      i = j;
      continue;
    }
    // Skip the parameter list.
    int pdepth = 0;
    for (; j < text.size(); ++j) {
      if (text[j] == '(') ++pdepth;
      if (text[j] == ')' && --pdepth == 0) {
        ++j;
        break;
      }
    }
    // Find the body '{', skipping const/noexcept/override and a
    // constructor init list (member brace-inits are preceded by an
    // identifier or '>'; the body brace is not).
    bool in_init_list = false;
    char prev_nonspace = ')';
    size_t body_open = std::string::npos;
    for (; j < text.size(); ++j) {
      char c = text[j];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == ';') break;  // declaration, no body
      if (c == ':' && j + 1 < text.size() && text[j + 1] != ':') {
        in_init_list = true;
        prev_nonspace = c;
        continue;
      }
      if (c == '(') {  // init-list member parens: skip to match
        int d = 0;
        for (; j < text.size(); ++j) {
          if (text[j] == '(') ++d;
          if (text[j] == ')' && --d == 0) break;
        }
        prev_nonspace = ')';
        continue;
      }
      if (c == '{') {
        if (in_init_list && (IsIdent(prev_nonspace) || prev_nonspace == '>')) {
          int d = 0;  // member brace-init: skip to match
          for (; j < text.size(); ++j) {
            if (text[j] == '{') ++d;
            if (text[j] == '}' && --d == 0) break;
          }
          prev_nonspace = '}';
          continue;
        }
        body_open = j;
        break;
      }
      prev_nonspace = c;
    }
    if (body_open == std::string::npos) {
      i = j;
      continue;
    }
    int d = 0;
    size_t k = body_open;
    for (; k < text.size(); ++k) {
      if (text[k] == '{') ++d;
      if (text[k] == '}' && --d == 0) break;
    }
    if (k < text.size()) {
      bodies.push_back({name, line_of[body_open] + 1, line_of[k] + 1});
      i = k;
    } else {
      i = body_open + 1;
    }
  }
  return bodies;
}

// Free-function map for TUs whose hot code is namespace-scope functions
// rather than class methods (core/simd_kernels.cc). Matches
// `Name(args) [attrs] {` at whatever scope it appears, skipping control
// keywords; recorded bodies are jumped over whole, so `if (...) {` inside
// a function never masquerades as a definition.
std::vector<BodyRange> ExtractFreeFunctionBodies(const SourceFile& f) {
  static const std::set<std::string> kNotFunctions = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "new",    "delete", "alignof",  "defined",
  };
  std::vector<BodyRange> bodies;
  std::string text;
  std::vector<size_t> line_of;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    for (char c : f.code[ln]) {
      text.push_back(c);
      line_of.push_back(ln);
    }
    text.push_back('\n');
    line_of.push_back(ln);
  }
  size_t i = 0;
  while (i < text.size()) {
    if (!IsIdent(text[i])) {
      ++i;
      continue;
    }
    size_t name_start = i;
    while (i < text.size() && IsIdent(text[i])) ++i;
    std::string name = text.substr(name_start, i - name_start);
    // Method definitions (Name::Method) are ExtractMethodBodies' job.
    bool qualified = name_start >= 2 && text[name_start - 1] == ':' &&
                     text[name_start - 2] == ':';
    size_t j = i;
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j >= text.size() || text[j] != '(' || qualified ||
        kNotFunctions.count(name) > 0) {
      continue;
    }
    int pdepth = 0;
    for (; j < text.size(); ++j) {
      if (text[j] == '(') ++pdepth;
      if (text[j] == ')' && --pdepth == 0) {
        ++j;
        break;
      }
    }
    // A definition continues with `{`, possibly after const/noexcept/
    // override; declarations and calls continue with `;`, `,`, `)`, and an
    // attribute's `((...))` is followed by the real declaration — any other
    // identifier here means this paren group was not a parameter list.
    size_t body_open = std::string::npos;
    for (; j < text.size(); ++j) {
      char c = text[j];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == '{') body_open = j;
      if (c != '{' && IsIdent(c)) {
        size_t w = j;
        while (w < text.size() && IsIdent(text[w])) ++w;
        const std::string word = text.substr(j, w - j);
        if (word != "const" && word != "noexcept" && word != "override" &&
            word != "final")
          break;
        j = w - 1;
        continue;
      }
      break;
    }
    if (body_open == std::string::npos) {
      i = j;
      continue;
    }
    int d = 0;
    size_t k = body_open;
    for (; k < text.size(); ++k) {
      if (text[k] == '{') ++d;
      if (text[k] == '}' && --d == 0) break;
    }
    if (k < text.size()) {
      bodies.push_back({name, line_of[body_open] + 1, line_of[k] + 1});
      i = k + 1;
    } else {
      i = body_open + 1;
    }
  }
  return bodies;
}

bool IsHotFunction(const std::string& name) {
  if (name.find("Block") != std::string::npos) return true;
  // Fused span parts, the batched accept kernel and its helpers run inside
  // RunBlock on every token; the Derive/ComputeAccept kernels are the SIMD
  // inner loops themselves.
  if (name.find("Part") != std::string::npos) return true;
  if (name.find("Segment") != std::string::npos) return true;
  if (StartsWith(name, "Derive") || StartsWith(name, "ComputeAccept"))
    return true;
  if (name == "Iterate" || name == "WordPhase" || name == "DocPhase" ||
      name == "AcceptChain")
    return true;
  if (StartsWith(name, "Draw") || StartsWith(name, "Sample")) return true;
  return false;
}

void CheckHotpathSync(const SourceFile& f, std::vector<Finding>* out) {
  const bool kernel_tu = f.rel == "src/core/simd_kernels.cc";
  bool scoped = f.rel == "src/core/warp_lda.cc" || kernel_tu ||
                (StartsWith(f.rel, "src/baselines/") &&
                 f.rel.size() > 3 && f.rel.substr(f.rel.size() - 3) == ".cc");
  if (!scoped) return;
  static const char* const kSyncTokens[] = {
      "fetch_add",   "fetch_sub",  "fetch_and",       "fetch_or",
      "fetch_xor",   "exchange",   "compare_exchange_weak",
      "compare_exchange_strong",   "lock_guard",      "unique_lock",
      "scoped_lock", "shared_lock", "try_lock",       "mutex",
  };
  std::vector<BodyRange> bodies = ExtractMethodBodies(f);
  if (kernel_tu) {
    // The SIMD kernel TU's hot code is free functions, not methods.
    std::vector<BodyRange> free_bodies = ExtractFreeFunctionBodies(f);
    bodies.insert(bodies.end(), free_bodies.begin(), free_bodies.end());
  }
  for (const BodyRange& b : bodies) {
    if (!IsHotFunction(b.name)) continue;
    for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
         ++ln) {
      const std::string& s = f.code[ln - 1];
      for (const char* tok : kSyncTokens) {
        if (HasWord(s, tok)) {
          out->push_back(
              {f.rel, ln, "hotpath-sync",
               std::string(tok) + " inside hot-path body '" + b.name +
                   "' — accumulate in ThreadScratch and flush at a stage "
                   "barrier (per-token synchronization breaks the O(1) "
                   "hot-path claim)",
               false});
          break;  // one finding per line is enough
        }
      }
      // `.lock()` / `->lock()` calls (the bare word "lock" would also hit
      // "block", so match the call shape explicitly).
      size_t p = s.find("lock(");
      while (p != std::string::npos) {
        bool member_call =
            (p >= 1 && s[p - 1] == '.') ||
            (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>');
        if (member_call) {
          out->push_back({f.rel, ln, "hotpath-sync",
                          "lock() call inside hot-path body '" + b.name +
                              "' — flush at a stage barrier instead",
                          false});
          break;
        }
        p = s.find("lock(", p + 1);
      }
    }
  }
}

// ---------------------------------------------------------- rule: R3b -----

// The *Scalar kernels in core/simd_kernels.cc are the portable reference
// implementations the vector paths are verified bit-identical against —
// an intrinsic inside one silently turns the oracle into the thing under
// test (and breaks non-x86 builds, where only the scalar paths compile).
void CheckScalarRef(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel != "src/core/simd_kernels.cc") return;
  auto is_intrinsic_at = [&](const std::string& s, size_t p) {
    if (p > 0 && IsIdent(s[p - 1])) return false;  // mid-identifier
    if (s.compare(p, 3, "_mm") == 0) return true;  // _mm_/_mm256_/_mm512_
    // Vector register types: __m128*, __m256*, __m512*.
    return s.compare(p, 4, "__m1") == 0 || s.compare(p, 4, "__m2") == 0 ||
           s.compare(p, 4, "__m5") == 0;
  };
  for (const BodyRange& b : ExtractFreeFunctionBodies(f)) {
    if (b.name.find("Scalar") == std::string::npos) continue;
    for (size_t ln = b.begin_line; ln <= b.end_line && ln <= f.code.size();
         ++ln) {
      const std::string& s = f.code[ln - 1];
      for (size_t p = 0; p < s.size(); ++p) {
        if (!is_intrinsic_at(s, p)) continue;
        out->push_back(
            {f.rel, ln, "scalar-ref",
             "SIMD intrinsic inside scalar reference kernel '" + b.name +
                 "' — the scalar path is the bit-identity oracle and must "
                 "stay portable; move vector code to an *Avx2 twin behind "
                 "runtime dispatch",
             false});
        break;  // one finding per line is enough
      }
    }
  }
}

// ------------------------------------------------------------ rule: R4 -----

// Allowed include targets per src/ layer. The two obs/ headers listed in
// kSeamHeaders are the sanctioned cross-cutting instrumentation seams and
// may be included from any layer.
const std::map<std::string, std::set<std::string>>& LayerAllowance() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"obs", {"obs"}},
      {"util", {"util"}},
      {"corpus", {"corpus", "util"}},
      {"cachesim", {"cachesim", "util"}},
      {"eval", {"eval", "corpus", "util"}},
      {"baselines", {"baselines", "cachesim", "corpus", "util"}},
      {"core",
       {"core", "baselines", "eval", "corpus", "cachesim", "util"}},
      {"dist",
       {"dist", "core", "baselines", "eval", "corpus", "cachesim", "util"}},
      {"serve", {"serve", "core", "eval", "corpus", "util"}},
  };
  return kAllowed;
}

bool IsSeamHeader(const std::string& inc) {
  return inc == "obs/metrics.h" || inc == "obs/trace.h";
}

struct IncludeEdge {
  std::string from_rel;  // including file, repo-relative
  size_t line;
  std::string target;    // include path as written, e.g. "core/warp_lda.h"
};

void CollectIncludes(const SourceFile& f, std::vector<IncludeEdge>* edges) {
  for (size_t ln = 0; ln < f.raw.size(); ++ln) {
    const std::string& s = f.raw[ln];
    size_t pos = s.find("#include");
    if (pos == std::string::npos) continue;
    size_t q1 = s.find('"', pos);
    if (q1 == std::string::npos) continue;  // <system> include
    size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    edges->push_back({f.rel, ln + 1, s.substr(q1 + 1, q2 - q1 - 1)});
  }
}

void CheckLayering(const std::vector<IncludeEdge>& edges,
                   const std::set<std::string>& repo_headers,
                   std::vector<Finding>* out) {
  // Per-file layer checks.
  for (const IncludeEdge& e : edges) {
    std::string layer = LayerOf(e.from_rel);
    if (layer.empty()) continue;  // tests/bench may include anything
    size_t slash = e.target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    std::string target_layer = e.target.substr(0, slash);
    const auto& allowed = LayerAllowance();
    auto it = allowed.find(layer);
    if (it == allowed.end()) {
      out->push_back({e.from_rel, e.line, "layering",
                      "unknown src/ layer '" + layer +
                          "' — add it to the warplint layer map",
                      false});
      continue;
    }
    if (allowed.count(target_layer) == 0) continue;  // not a src/ layer path
    if (it->second.count(target_layer) > 0) continue;
    if (IsSeamHeader(e.target)) continue;  // sanctioned instrumentation seam
    out->push_back(
        {e.from_rel, e.line, "layering",
         "layer '" + layer + "' must not include '" + e.target +
             "' (allowed: own layer and below; obs/metrics.h and "
             "obs/trace.h are the only sanctioned cross-cutting seams)",
         false});
  }
  // Include-cycle detection over repo headers (nodes are include paths).
  std::map<std::string, std::vector<const IncludeEdge*>> graph;
  for (const IncludeEdge& e : edges) {
    if (!StartsWith(e.from_rel, "src/")) continue;
    std::string from_key = e.from_rel.substr(4);  // path relative to src/
    if (repo_headers.count(e.target) > 0) graph[from_key].push_back(&e);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const IncludeEdge* e : graph[node]) {
      int c = color.count(e->target) > 0 ? color[e->target] : 0;
      if (c == 1) {
        // Back edge: a cycle through `stack` from e->target to node.
        std::string cyc = e->target;
        for (size_t s = stack.size(); s-- > 0;) {
          cyc += " -> " + stack[s];
          if (stack[s] == e->target) break;
        }
        if (reported.insert(cyc).second) {
          out->push_back({e->from_rel, e->line, "layering",
                          "include cycle: " + cyc, false});
        }
      } else if (c == 0) {
        dfs(e->target);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, unused] : graph) {
    (void)unused;
    if (color[node] == 0) dfs(node);
  }
}

// ------------------------------------------------------------ rule: R5 -----

void CheckNakedNew(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t at = 0;
    if (HasWord(s, "new", &at)) {
      out->push_back({f.rel, ln + 1, "naked-new",
                      "naked new — use std::make_unique/make_shared or a "
                      "container; a deliberate leaked singleton needs a "
                      "NOLINT with a justification",
                      false});
    }
    if (HasWord(s, "delete", &at)) {
      // `= delete;` (deleted special member) is fine.
      size_t b = at;
      while (b > 0 && s[b - 1] == ' ') --b;
      if (b > 0 && s[b - 1] == '=') continue;
      out->push_back({f.rel, ln + 1, "naked-new",
                      "naked delete — ownership must live in a smart "
                      "pointer or container",
                      false});
    }
  }
}

// ------------------------------------------------------------ rule: R6 -----

// Identifiers declared with a non-trivially-copyable std:: type in this
// file (value declarations, by no means exhaustive — the rule is a tripwire,
// not a type checker).
std::set<std::string> NonTrivialDecls(const SourceFile& f) {
  static const char* const kTypes[] = {
      "string", "vector",   "deque",      "list",       "map",
      "set",    "function", "shared_ptr", "unique_ptr", "unordered_map",
      "unordered_set",
  };
  std::set<std::string> names;
  for (const std::string& s : f.code) {
    for (const char* t : kTypes) {
      size_t at = 0;
      std::string tok = t;
      size_t search = 0;
      while (search < s.size()) {
        std::string sub = s.substr(search);
        if (!HasWord(sub, tok, &at)) break;
        size_t j = search + at + tok.size();
        if (s.compare(j, 1, "<") == 0) {  // skip template args
          int depth = 0;
          for (; j < s.size(); ++j) {
            if (s[j] == '<') ++depth;
            if (s[j] == '>' && --depth == 0) {
              ++j;
              break;
            }
          }
        } else if (tok != "string") {
          search = j;
          continue;  // vector without <..> isn't a declaration
        }
        while (j < s.size() && s[j] == ' ') ++j;
        size_t name_start = j;
        while (j < s.size() && IsIdent(s[j])) ++j;
        if (j > name_start) {
          size_t k = j;
          while (k < s.size() && s[k] == ' ') ++k;
          if (k >= s.size() || s[k] == ';' || s[k] == '=' || s[k] == '{' ||
              s[k] == '(') {
            names.insert(s.substr(name_start, j - name_start));
          }
        }
        search = j;
      }
    }
  }
  return names;
}

void CheckMemcpyNontrivial(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  std::set<std::string> nontrivial = NonTrivialDecls(f);
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t at = 0;
    if (!HasWord(s, "memcpy", &at) && !HasWord(s, "__builtin_memcpy", &at))
      continue;
    size_t open = s.find('(', at);
    if (open == std::string::npos) continue;
    // First two arguments, split at depth-0 commas.
    std::vector<std::string> argv;
    int depth = 0;
    std::string cur;
    for (size_t j = open + 1; j < s.size(); ++j) {
      char c = s[j];
      if (c == '(') ++depth;
      if (c == ')') {
        if (depth == 0) {
          argv.push_back(Trim(cur));
          break;
        }
        --depth;
      }
      if (c == ',' && depth == 0) {
        argv.push_back(Trim(cur));
        cur.clear();
        continue;
      }
      cur.push_back(c);
    }
    for (size_t a = 0; a < argv.size() && a < 2; ++a) {
      std::string arg = argv[a];
      if (arg == "this") {
        out->push_back({f.rel, ln + 1, "memcpy-nontrivial",
                        "memcpy over *this tramples invariants (and any "
                        "vtable); copy members explicitly",
                        false});
        continue;
      }
      if (!arg.empty() && arg[0] == '&') arg = Trim(arg.substr(1));
      // `&vec` / `vec` where vec is a non-trivial object (its .data() is
      // fine — that's the element buffer, not the control block).
      if (arg.find('.') == std::string::npos &&
          arg.find("->") == std::string::npos &&
          nontrivial.count(arg) > 0) {
        out->push_back(
            {f.rel, ln + 1, "memcpy-nontrivial",
             "memcpy over non-trivially-copyable object '" + arg +
                 "' corrupts its control block; use assignment or .data()",
             false});
      }
    }
  }
}

// ------------------------------------------------------------ rule: R7 -----

// Pass 1 collects `struct/class alignas(64) Name` across all files; pass 2
// flags (a) alignas(64) on an array whose element type is not itself
// alignas(64), (b) a member-level alignas(64) followed by an unaligned,
// non-padding member in the same struct body.
void CollectAlignedTypes(const SourceFile& f, std::set<std::string>* types) {
  for (const std::string& s : f.code) {
    size_t pos = s.find("alignas");
    if (pos == std::string::npos) continue;
    size_t sw = s.find("struct");
    size_t cw = s.find("class");
    size_t kw = std::min(sw == std::string::npos ? s.size() : sw,
                         cw == std::string::npos ? s.size() : cw);
    if (kw >= pos) continue;  // alignas not preceded by struct/class
    size_t close = s.find(')', pos);
    if (close == std::string::npos) continue;
    size_t j = close + 1;
    while (j < s.size() && s[j] == ' ') ++j;
    size_t name_start = j;
    while (j < s.size() && IsIdent(s[j])) ++j;
    if (j > name_start) types->insert(s.substr(name_start, j - name_start));
  }
}

void CheckAlignasPad(const SourceFile& f,
                     const std::set<std::string>& aligned_types,
                     std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/")) return;
  bool prev_member_alignas = false;
  for (size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    size_t pos = s.find("alignas(");
    bool line_has_member_alignas = false;
    if (pos != std::string::npos && s.find("struct") == std::string::npos &&
        s.find("class") == std::string::npos) {
      size_t close = s.find(')', pos);
      std::string width =
          close == std::string::npos
              ? ""
              : Trim(s.substr(pos + 8, close - pos - 8));
      if (width == "64" && close != std::string::npos) {
        // Declaration shape after alignas(64): Type name [ '[' ... ]
        size_t j = close + 1;
        while (j < s.size() && s[j] == ' ') ++j;
        size_t type_start = j;
        while (j < s.size() && (IsIdent(s[j]) || s[j] == ':')) ++j;
        std::string type = s.substr(type_start, j - type_start);
        size_t name_pos = j;
        while (name_pos < s.size() && s[name_pos] == ' ') ++name_pos;
        size_t name_end = name_pos;
        while (name_end < s.size() && IsIdent(s[name_end])) ++name_end;
        size_t after = name_end;
        while (after < s.size() && s[after] == ' ') ++after;
        bool is_array = after < s.size() && s[after] == '[';
        std::string bare_type = type;
        size_t last_colon = bare_type.rfind(':');
        if (last_colon != std::string::npos)
          bare_type = bare_type.substr(last_colon + 1);
        if (is_array && aligned_types.count(bare_type) == 0) {
          out->push_back(
              {f.rel, ln + 1, "alignas-pad",
               "alignas(64) on an array only aligns the base address; "
               "elements of '" + type +
                   "' still straddle cache lines — declare the element "
                   "struct alignas(64) instead",
               false});
        }
        // A member whose type is itself alignas(64) occupies whole cache
        // lines, so the next member starts on a fresh line; anything else
        // (scalars, atomics) leaves tail space the next member lands in.
        line_has_member_alignas = aligned_types.count(bare_type) == 0;
      }
    }
    // (b) member after an alignas(64) member without its own alignas.
    std::string t = Trim(s);
    bool is_member_decl =
        !t.empty() && t.back() == ';' && t.find('(') == std::string::npos &&
        t.find('}') == std::string::npos && t.find("using") != 0 &&
        t.find("return") != 0 && t.find("static_assert") != 0;
    if (prev_member_alignas && is_member_decl &&
        t.find("alignas") == std::string::npos &&
        t.find("pad") == std::string::npos) {
      out->push_back(
          {f.rel, ln + 1, "alignas-pad",
           "member declared right after an alignas(64) member shares its "
           "cache line — align it too, add explicit padding, or move the "
           "alignas to the struct",
           false});
    }
    if (!t.empty()) {
      prev_member_alignas = line_has_member_alignas && !t.empty() &&
                            t.back() == ';';
    }
  }
}

// ------------------------------------------------------------ rule: R8 -----

void CheckNolintHygiene(const SourceFile& f, std::vector<Finding>* out) {
  for (const auto& [line, sup] : f.nolint) {
    for (const std::string& id : sup.rules) {
      if (!IsKnownRule(id)) {
        out->push_back({f.rel, line, "nolint",
                        "NOLINT names unknown rule 'warplint-" + id + "'",
                        false});
      }
    }
    if (!sup.justified) {
      out->push_back({f.rel, line, "nolint",
                      "NOLINT(warplint-*) without a justification — append "
                      "': <why this is safe>'",
                      false});
    }
  }
}

// ------------------------------------------------------------- reporting ---

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::vector<std::string> dirs = {"src", "tests", "bench"};
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--json") {
      json = true;
    } else if (a == "--dirs" && i + 1 < argc) {
      dirs.clear();
      std::stringstream ss(argv[++i]);
      std::string d;
      while (std::getline(ss, d, ',')) dirs.push_back(d);
    } else {
      std::fprintf(stderr,
                   "usage: warplint --root <dir> [--json] [--dirs a,b,c]\n");
      return 2;
    }
  }

  // ------------------------------------------------------------- gather ---
  std::vector<SourceFile> files;
  std::error_code ec;
  for (const std::string& dir : dirs) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        // Fixture snippets contain intentional violations; build trees are
        // generated code.
        if (name == "lint_fixtures" || StartsWith(name, "build")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      SourceFile f;
      f.rel = fs::relative(it->path(), root, ec).generic_string();
      std::ifstream in(it->path());
      if (!in) {
        std::fprintf(stderr, "warplint: cannot read %s\n", f.rel.c_str());
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) f.raw.push_back(line);
      f.code = Scrub(f.raw);
      ParseNolint(&f);
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });

  // ------------------------------------------------------ global passes ---
  std::set<std::string> aligned_types;
  std::set<std::string> repo_headers;  // include-paths of headers under src/
  std::vector<IncludeEdge> edges;
  for (const SourceFile& f : files) {
    CollectAlignedTypes(f, &aligned_types);
    if (StartsWith(f.rel, "src/") && f.rel.size() > 2 &&
        f.rel.substr(f.rel.size() - 2) == ".h") {
      repo_headers.insert(f.rel.substr(4));
    }
    CollectIncludes(f, &edges);
  }

  // -------------------------------------------------------------- rules ---
  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    CheckDeterminism(f, &findings);
    CheckUnorderedIter(f, &findings);
    CheckHotpathSync(f, &findings);
    CheckScalarRef(f, &findings);
    CheckNakedNew(f, &findings);
    CheckMemcpyNontrivial(f, &findings);
    CheckAlignasPad(f, aligned_types, &findings);
    CheckNolintHygiene(f, &findings);
  }
  CheckLayering(edges, repo_headers, &findings);

  // -------------------------------------------------------- suppression ---
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.rel] = &f;
  for (Finding& fd : findings) {
    auto it = by_rel.find(fd.file);
    if (it == by_rel.end()) continue;
    auto sup = it->second->nolint.find(fd.line);
    if (sup == it->second->nolint.end()) continue;
    if (fd.rule != "nolint" && sup->second.rules.count(fd.rule) > 0 &&
        sup->second.justified) {
      fd.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  size_t active = 0, suppressed = 0;
  for (const Finding& fd : findings) {
    if (fd.suppressed) {
      ++suppressed;
    } else {
      ++active;
    }
  }

  // ----------------------------------------------------------- emission ---
  if (json) {
    std::map<std::string, size_t> counts;
    for (const Finding& fd : findings) {
      if (!fd.suppressed) ++counts["warplint-" + fd.rule];
    }
    std::printf("{\n  \"files_scanned\": %zu,\n", files.size());
    std::printf("  \"violations\": [");
    bool first = true;
    for (const Finding& fd : findings) {
      if (fd.suppressed) continue;
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %zu, "
                  "\"rule\": \"warplint-%s\", \"message\": \"%s\"}",
                  first ? "" : ",", JsonEscape(fd.file).c_str(), fd.line,
                  fd.rule.c_str(), JsonEscape(fd.message).c_str());
      first = false;
    }
    std::printf("%s],\n", first ? "" : "\n  ");
    std::printf("  \"suppressed\": [");
    first = true;
    for (const Finding& fd : findings) {
      if (!fd.suppressed) continue;
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %zu, "
                  "\"rule\": \"warplint-%s\"}",
                  first ? "" : ",", JsonEscape(fd.file).c_str(), fd.line,
                  fd.rule.c_str());
      first = false;
    }
    std::printf("%s],\n", first ? "" : "\n  ");
    std::printf("  \"counts\": {");
    first = true;
    for (const auto& [rule, n] : counts) {
      std::printf("%s\"%s\": %zu", first ? "" : ", ", rule.c_str(), n);
      first = false;
    }
    std::printf("},\n  \"total\": %zu\n}\n", active);
  } else {
    for (const Finding& fd : findings) {
      if (fd.suppressed) continue;
      std::printf("%s:%zu warplint-%s %s\n", fd.file.c_str(), fd.line,
                  fd.rule.c_str(), fd.message.c_str());
    }
    std::printf("warplint: %zu file(s), %zu violation(s), %zu suppressed\n",
                files.size(), active, suppressed);
  }
  return active == 0 ? 0 : 1;
}

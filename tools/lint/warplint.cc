// warplint — repo-native static analysis for the WarpLDA codebase.
//
// Driver: gathers sources, runs every rule pass, applies NOLINT suppression
// and the optional baseline, and reports. The analysis itself lives in
//
//   lint_model.{h,cc}    scrubbed token/line view, body + class model
//   rules_core.cc        the original token rules (determinism, layering,
//                        hotpath-sync, naked-new, memcpy, alignas-pad, ...)
//   rules_contracts.cc   WARP_WORKER_LOCAL / WARP_BARRIER_ONLY /
//                        WARP_IMMUTABLE_AFTER concurrency contracts
//   rules_schema.cc      serialized-schema lock (tools/lint/schema.lock)
//   rules_crosstu.cc     obs-orphan, rng-stream, stale-nolint
//
// Zero dependencies beyond the C++17 standard library — no libclang. Runs
// as a tier-1 ctest (warplint_repo) and in CI.
//
// Usage:
//   warplint --root <dir> [--json] [--dirs a,b,c] [--baseline <report.json>]
//            [--schema-lock <path>] [--write-schema-lock]
//
// Exit codes: 0 clean, 1 violations (new violations in --baseline mode),
// 2 usage / IO error / schema-lock write refusal.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint_model.h"
#include "lint_rules.h"

namespace fs = std::filesystem;

using namespace warplint;

namespace {

// Parses the "violations" array of a previous --json report into
// per-(file, rule) counts. Deliberately shape-matched to our own emitter
// rather than a general JSON parser.
std::map<std::pair<std::string, std::string>, size_t> LoadBaseline(
    const std::string& path, bool* ok) {
  std::map<std::pair<std::string, std::string>, size_t> counts;
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return counts;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  size_t begin = text.find("\"violations\"");
  if (begin == std::string::npos) {
    *ok = true;  // empty / clean report
    return counts;
  }
  size_t end = text.find("\"suppressed\"", begin);
  if (end == std::string::npos) end = text.size();
  size_t pos = begin;
  while (true) {
    size_t fkey = text.find("\"file\": \"", pos);
    if (fkey == std::string::npos || fkey >= end) break;
    size_t fbegin = fkey + 9;
    size_t fend = text.find('"', fbegin);
    size_t rkey = text.find("\"rule\": \"warplint-", fbegin);
    if (fend == std::string::npos || rkey == std::string::npos || rkey >= end) {
      break;
    }
    size_t rbegin = rkey + 18;
    size_t rend = text.find('"', rbegin);
    if (rend == std::string::npos) break;
    counts[{text.substr(fbegin, fend - fbegin),
            text.substr(rbegin, rend - rbegin)}]++;
    pos = rend;
  }
  *ok = true;
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::string baseline_path;
  std::string schema_lock;  // empty -> <root>/tools/lint/schema.lock
  bool write_schema_lock = false;
  std::vector<std::string> dirs = {"src", "tests", "bench"};
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--json") {
      json = true;
    } else if (a == "--dirs" && i + 1 < argc) {
      dirs.clear();
      std::stringstream ss(argv[++i]);
      std::string d;
      while (std::getline(ss, d, ',')) dirs.push_back(d);
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--schema-lock" && i + 1 < argc) {
      schema_lock = argv[++i];
    } else if (a == "--write-schema-lock") {
      write_schema_lock = true;
    } else {
      std::fprintf(stderr,
                   "usage: warplint --root <dir> [--json] [--dirs a,b,c] "
                   "[--baseline <report.json>] [--schema-lock <path>] "
                   "[--write-schema-lock]\n");
      return 2;
    }
  }
  if (schema_lock.empty()) {
    schema_lock = (fs::path(root) / "tools" / "lint" / "schema.lock")
                      .generic_string();
  }

  // ------------------------------------------------------------- gather ---
  std::vector<SourceFile> files;
  std::error_code ec;
  for (const std::string& dir : dirs) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        // Fixture snippets contain intentional violations; build trees are
        // generated code.
        if (name == "lint_fixtures" || StartsWith(name, "build")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      SourceFile f;
      f.rel = fs::relative(it->path(), root, ec).generic_string();
      std::ifstream in(it->path());
      if (!in) {
        std::fprintf(stderr, "warplint: cannot read %s\n", f.rel.c_str());
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) f.raw.push_back(line);
      f.code = Scrub(f.raw);
      ParseNolint(&f);
      Flatten(&f);
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });

  SchemaOptions schema_opt;
  schema_opt.lock_path = schema_lock;
  schema_opt.write_lock = write_schema_lock;
  if (write_schema_lock) {
    // Lock (re)generation is its own mode: extract, guard, write, exit.
    std::vector<Finding> ignored;
    return CheckSchema(files, schema_opt, &ignored);
  }

  // ------------------------------------------------------ global passes ---
  std::set<std::string> aligned_types;
  std::set<std::string> repo_headers;  // include-paths of headers under src/
  std::vector<IncludeEdge> edges;
  for (const SourceFile& f : files) {
    CollectAlignedTypes(f, &aligned_types);
    if (StartsWith(f.rel, "src/") && f.rel.size() > 2 &&
        f.rel.substr(f.rel.size() - 2) == ".h") {
      repo_headers.insert(f.rel.substr(4));
    }
    CollectIncludes(f, &edges);
  }

  // -------------------------------------------------------------- rules ---
  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    CheckDeterminism(f, &findings);
    CheckUnorderedIter(f, &findings);
    CheckHotpathSync(f, &findings);
    CheckScalarRef(f, &findings);
    CheckNakedNew(f, &findings);
    CheckMemcpyNontrivial(f, &findings);
    CheckAlignasPad(f, aligned_types, &findings);
    CheckNolintHygiene(f, &findings);
    CheckRngStream(f, &findings);
  }
  CheckLayering(edges, repo_headers, &findings);
  ContractModel contracts = BuildContractModel(files);
  CheckContracts(files, contracts, &findings);
  CheckSchema(files, schema_opt, &findings);
  CheckObsOrphans(files, &findings);
  // Last on purpose: consults every finding above to spot dead NOLINTs.
  CheckStaleNolint(files, &findings);

  // -------------------------------------------------------- suppression ---
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.rel] = &f;
  for (Finding& fd : findings) {
    auto it = by_rel.find(fd.file);
    if (it == by_rel.end()) continue;
    auto sup = it->second->nolint.find(fd.line);
    if (sup == it->second->nolint.end()) continue;
    if (fd.rule != "nolint" && sup->second.rules.count(fd.rule) > 0 &&
        sup->second.justified) {
      fd.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  // ----------------------------------------------------------- baseline ---
  // A baseline is a previous --json report: per-(file, rule) counts of
  // accepted findings. The first N active findings of each group are
  // "baselined" (reported in the summary but neither printed nor fatal);
  // anything beyond the allowance is NEW and fails the run.
  std::vector<char> baselined(findings.size(), 0);
  size_t baselined_count = 0;
  if (!baseline_path.empty()) {
    bool ok = false;
    std::map<std::pair<std::string, std::string>, size_t> allowance =
        LoadBaseline(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "warplint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    for (size_t i = 0; i < findings.size(); ++i) {
      if (findings[i].suppressed) continue;
      auto it = allowance.find({findings[i].file, findings[i].rule});
      if (it != allowance.end() && it->second > 0) {
        --it->second;
        baselined[i] = 1;
        ++baselined_count;
      }
    }
  }

  size_t active = 0, suppressed = 0;
  for (size_t i = 0; i < findings.size(); ++i) {
    if (findings[i].suppressed) {
      ++suppressed;
    } else if (!baselined[i]) {
      ++active;
    }
  }

  // ----------------------------------------------------------- emission ---
  if (json) {
    std::map<std::string, size_t> counts;
    for (size_t i = 0; i < findings.size(); ++i) {
      if (!findings[i].suppressed && !baselined[i]) {
        ++counts["warplint-" + findings[i].rule];
      }
    }
    std::printf("{\n  \"files_scanned\": %zu,\n", files.size());
    std::printf("  \"violations\": [");
    bool first = true;
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& fd = findings[i];
      if (fd.suppressed || baselined[i]) continue;
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %zu, "
                  "\"rule\": \"warplint-%s\", \"message\": \"%s\"}",
                  first ? "" : ",", JsonEscape(fd.file).c_str(), fd.line,
                  fd.rule.c_str(), JsonEscape(fd.message).c_str());
      first = false;
    }
    std::printf("%s],\n", first ? "" : "\n  ");
    std::printf("  \"suppressed\": [");
    first = true;
    for (const Finding& fd : findings) {
      if (!fd.suppressed) continue;
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %zu, "
                  "\"rule\": \"warplint-%s\"}",
                  first ? "" : ",", JsonEscape(fd.file).c_str(), fd.line,
                  fd.rule.c_str());
      first = false;
    }
    std::printf("%s],\n", first ? "" : "\n  ");
    std::printf("  \"counts\": {");
    first = true;
    for (const auto& [rule, n] : counts) {
      std::printf("%s\"%s\": %zu", first ? "" : ", ", rule.c_str(), n);
      first = false;
    }
    std::printf("},\n");
    if (!baseline_path.empty()) {
      std::printf("  \"baselined\": %zu,\n", baselined_count);
    }
    std::printf("  \"total\": %zu\n}\n", active);
  } else {
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& fd = findings[i];
      if (fd.suppressed || baselined[i]) continue;
      std::printf("%s:%zu warplint-%s %s\n", fd.file.c_str(), fd.line,
                  fd.rule.c_str(), fd.message.c_str());
    }
    if (baseline_path.empty()) {
      std::printf("warplint: %zu file(s), %zu violation(s), %zu suppressed\n",
                  files.size(), active, suppressed);
    } else {
      std::printf("warplint: %zu file(s), %zu new violation(s), "
                  "%zu baselined, %zu suppressed\n",
                  files.size(), active, baselined_count, suppressed);
    }
  }
  return active == 0 ? 0 : 1;
}
